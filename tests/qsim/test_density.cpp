#include <cmath>

#include <gtest/gtest.h>

#include "qsim/density_matrix.h"
#include "qsim/noise.h"
#include "util/rng.h"

namespace {

using namespace quorum::qsim;
namespace util = quorum::util;
using cd = std::complex<double>;

statevector random_state(std::size_t n, quorum::util::rng& gen) {
    statevector state(n);
    for (std::size_t q = 0; q < n; ++q) {
        const qubit_t operand[] = {static_cast<qubit_t>(q)};
        const double theta[] = {gen.angle()};
        state.apply_gate(gate_kind::ry, operand, theta);
    }
    for (std::size_t q = 0; q + 1 < n; ++q) {
        const qubit_t operands[] = {static_cast<qubit_t>(q),
                                    static_cast<qubit_t>(q + 1)};
        state.apply_gate(gate_kind::cx, operands);
    }
    return state;
}

TEST(DensityMatrix, StartsInGroundState) {
    density_matrix rho(2);
    EXPECT_NEAR(rho.trace_real(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_EQ(rho.element(0, 0), cd(1.0));
}

TEST(DensityMatrix, FromStatevectorIsPure) {
    quorum::util::rng gen(3);
    const statevector psi = random_state(3, gen);
    const density_matrix rho = density_matrix::from_statevector(psi);
    EXPECT_NEAR(rho.trace_real(), 1.0, 1e-10);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
    for (std::size_t q = 0; q < 3; ++q) {
        EXPECT_NEAR(rho.probability_one(static_cast<qubit_t>(q)),
                    psi.probability_one(static_cast<qubit_t>(q)), 1e-10);
    }
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStatevector) {
    quorum::util::rng gen(5);
    for (int trial = 0; trial < 15; ++trial) {
        statevector psi(3);
        density_matrix rho(3);
        for (int g = 0; g < 10; ++g) {
            const auto q = static_cast<qubit_t>(gen.uniform_index(3));
            const auto q2 =
                static_cast<qubit_t>((q + 1 + gen.uniform_index(2)) % 3);
            const int pick = static_cast<int>(gen.uniform_index(4));
            if (pick == 0) {
                const qubit_t operand[] = {q};
                const double theta[] = {gen.angle()};
                psi.apply_gate(gate_kind::rx, operand, theta);
                rho.apply_gate(gate_kind::rx, operand, theta);
            } else if (pick == 1) {
                const qubit_t operand[] = {q};
                psi.apply_gate(gate_kind::h, operand);
                rho.apply_gate(gate_kind::h, operand);
            } else if (pick == 2) {
                const qubit_t operands[] = {q, q2};
                psi.apply_gate(gate_kind::cx, operands);
                rho.apply_gate(gate_kind::cx, operands);
            } else {
                const qubit_t operand[] = {q};
                const double theta[] = {gen.angle()};
                psi.apply_gate(gate_kind::rz, operand, theta);
                rho.apply_gate(gate_kind::rz, operand, theta);
            }
        }
        const density_matrix expected = density_matrix::from_statevector(psi);
        for (std::size_t r = 0; r < 8; ++r) {
            for (std::size_t c = 0; c < 8; ++c) {
                EXPECT_NEAR(
                    std::abs(rho.element(r, c) - expected.element(r, c)), 0.0,
                    1e-10);
            }
        }
    }
}

TEST(DensityMatrix, KrausChannelPreservesTrace) {
    quorum::util::rng gen(7);
    density_matrix rho = density_matrix::from_statevector(random_state(3, gen));
    const noise_model nm = noise_model::ibm_brisbane_median();
    const auto kraus = nm.thermal_kraus(660.0);
    ASSERT_FALSE(kraus.empty());
    const qubit_t operand[] = {1};
    rho.apply_kraus(kraus, operand);
    EXPECT_NEAR(rho.trace_real(), 1.0, 1e-10);
}

TEST(DensityMatrix, DepolarizeReducesPurity) {
    quorum::util::rng gen(9);
    density_matrix rho = density_matrix::from_statevector(random_state(2, gen));
    const double before = rho.purity();
    const qubit_t operand[] = {0};
    rho.depolarize(operand, 0.2);
    EXPECT_LT(rho.purity(), before);
    EXPECT_NEAR(rho.trace_real(), 1.0, 1e-10);
}

TEST(DensityMatrix, FullDepolarizeGivesMaximallyMixed) {
    quorum::util::rng gen(11);
    density_matrix rho = density_matrix::from_statevector(random_state(2, gen));
    const qubit_t operands[] = {0, 1};
    rho.depolarize(operands, 1.0);
    EXPECT_NEAR(rho.purity(), 0.25, 1e-10);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(rho.element(i, i).real(), 0.25, 1e-10);
    }
}

TEST(DensityMatrix, DepolarizeZeroIsNoop) {
    quorum::util::rng gen(13);
    density_matrix rho = density_matrix::from_statevector(random_state(2, gen));
    const double before = rho.purity();
    const qubit_t operand[] = {1};
    rho.depolarize(operand, 0.0);
    EXPECT_NEAR(rho.purity(), before, 1e-12);
}

TEST(DensityMatrix, ResetChannelForcesGround) {
    quorum::util::rng gen(15);
    density_matrix rho = density_matrix::from_statevector(random_state(3, gen));
    rho.reset_qubit(1);
    EXPECT_NEAR(rho.probability_one(1), 0.0, 1e-12);
    EXPECT_NEAR(rho.trace_real(), 1.0, 1e-10);
}

TEST(DensityMatrix, ResetOfBellHalfLeavesPartnerMixed) {
    statevector psi(2);
    const qubit_t q0[] = {0};
    psi.apply_gate(gate_kind::h, q0);
    const qubit_t cx01[] = {0, 1};
    psi.apply_gate(gate_kind::cx, cx01);
    density_matrix rho = density_matrix::from_statevector(psi);
    rho.reset_qubit(0);
    EXPECT_NEAR(rho.probability_one(1), 0.5, 1e-12);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-10); // |0><0| (x) I/2
}

TEST(DensityMatrix, ThermalFastPathMatchesKraus) {
    quorum::util::rng gen(17);
    const noise_model nm = noise_model::ibm_brisbane_median();
    for (const double duration : {60.0, 660.0, 1300.0}) {
        const auto coeff = nm.thermal_coefficients(duration);
        const auto kraus = nm.thermal_kraus(duration);
        density_matrix fast =
            density_matrix::from_statevector(random_state(3, gen));
        density_matrix slow = fast;
        fast.apply_thermal(2, coeff.gamma, coeff.lambda);
        const qubit_t operand[] = {2};
        slow.apply_kraus(kraus, operand);
        for (std::size_t r = 0; r < 8; ++r) {
            for (std::size_t c = 0; c < 8; ++c) {
                EXPECT_NEAR(std::abs(fast.element(r, c) - slow.element(r, c)),
                            0.0, 1e-12);
            }
        }
    }
}

TEST(DensityMatrix, ThermalDampsExcitedPopulation) {
    density_matrix rho(1);
    const qubit_t q0[] = {0};
    rho.apply_gate(gate_kind::x, q0);
    rho.apply_thermal(0, 0.3, 0.0);
    EXPECT_NEAR(rho.probability_one(0), 0.7, 1e-12);
    EXPECT_NEAR(rho.trace_real(), 1.0, 1e-12);
}

TEST(DensityMatrix, PartialTraceOfProductState) {
    // |+> (x) |1>: tracing out qubit 1 leaves |+><+|.
    statevector psi(2);
    const qubit_t q0[] = {0};
    psi.apply_gate(gate_kind::h, q0);
    const qubit_t q1[] = {1};
    psi.apply_gate(gate_kind::x, q1);
    const density_matrix rho = density_matrix::from_statevector(psi);
    const qubit_t traced[] = {1};
    const density_matrix reduced = rho.partial_trace(traced);
    EXPECT_EQ(reduced.num_qubits(), 1u);
    EXPECT_NEAR(reduced.element(0, 1).real(), 0.5, 1e-12);
    EXPECT_NEAR(reduced.element(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(reduced.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, PartialTraceOfBellIsMixed) {
    statevector psi(2);
    const qubit_t q0[] = {0};
    psi.apply_gate(gate_kind::h, q0);
    const qubit_t cx01[] = {0, 1};
    psi.apply_gate(gate_kind::cx, cx01);
    const density_matrix rho = density_matrix::from_statevector(psi);
    const qubit_t traced[] = {0};
    const density_matrix reduced = rho.partial_trace(traced);
    EXPECT_NEAR(reduced.purity(), 0.5, 1e-12);
    EXPECT_NEAR(reduced.element(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(reduced.element(0, 1)), 0.0, 1e-12);
}

TEST(DensityMatrix, InitializeRegisterMatchesStatevector) {
    quorum::util::rng gen(19);
    std::vector<amp> sub(4);
    double norm = 0.0;
    for (auto& a : sub) {
        a = cd(gen.uniform(), 0.0);
        norm += std::norm(a);
    }
    for (auto& a : sub) {
        a /= std::sqrt(norm);
    }
    const qubit_t reg[] = {0, 1};

    density_matrix rho(3);
    rho.initialize_register(reg, sub);

    statevector psi(3);
    psi.initialize_register(reg, sub);
    const density_matrix expected = density_matrix::from_statevector(psi);
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 8; ++c) {
            EXPECT_NEAR(std::abs(rho.element(r, c) - expected.element(r, c)),
                        0.0, 1e-12);
        }
    }
}

TEST(DensityMatrix, OverlapOfPureStatesIsFidelity) {
    quorum::util::rng gen(21);
    const statevector a = random_state(2, gen);
    const statevector b = random_state(2, gen);
    const density_matrix rho_a = density_matrix::from_statevector(a);
    const density_matrix rho_b = density_matrix::from_statevector(b);
    const double expected = std::norm(a.inner_product(b));
    EXPECT_NEAR(rho_a.overlap(rho_b), expected, 1e-10);
    EXPECT_NEAR(rho_a.overlap(rho_a), 1.0, 1e-10);
}

TEST(DensityMatrix, CxFastPathMatchesGeneric) {
    quorum::util::rng gen(23);
    for (int trial = 0; trial < 10; ++trial) {
        density_matrix fast =
            density_matrix::from_statevector(random_state(3, gen));
        density_matrix slow = fast;
        const auto c = static_cast<qubit_t>(gen.uniform_index(3));
        const auto t = static_cast<qubit_t>((c + 1 + gen.uniform_index(2)) % 3);
        const qubit_t operands[] = {c, t};
        fast.apply_gate(gate_kind::cx, operands); // permutation fast path
        slow.apply_matrix(gate_matrix(gate_kind::cx), operands); // generic

        for (std::size_t r = 0; r < 8; ++r) {
            for (std::size_t col = 0; col < 8; ++col) {
                EXPECT_NEAR(std::abs(fast.element(r, col) -
                                     slow.element(r, col)),
                            0.0, 1e-12);
            }
        }
    }
}

} // namespace
