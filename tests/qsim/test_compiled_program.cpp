#include <cmath>

#include <gtest/gtest.h>

#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qsim/compiled_program.h"
#include "qsim/statevector.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;
using qsim::circuit;
using qsim::compiled_program;
using qsim::fused_op;
using qsim::gate_kind;

/// Builds a random gates-only circuit out of 1q rotations and cx/cz.
circuit random_circuit(std::size_t n_qubits, std::size_t gates,
                       util::rng& gen) {
    circuit c(n_qubits);
    for (std::size_t g = 0; g < gates; ++g) {
        const std::size_t choice = gen.uniform_index(5);
        const auto q = static_cast<qsim::qubit_t>(
            gen.uniform_index(n_qubits));
        auto other = static_cast<qsim::qubit_t>(
            gen.uniform_index(n_qubits));
        if (other == q) {
            other = static_cast<qsim::qubit_t>((q + 1) % n_qubits);
        }
        switch (choice) {
        case 0:
            c.rx(gen.angle(), q);
            break;
        case 1:
            c.rz(gen.angle(), q);
            break;
        case 2:
            c.h(q);
            break;
        case 3:
            c.cx(q, other);
            break;
        default:
            c.cz(q, other);
            break;
        }
    }
    return c;
}

/// Dense unitary realised by a fused-op sequence (columns via the engine).
util::cmatrix fused_unitary(std::span<const fused_op> ops,
                            std::size_t n_qubits) {
    const std::size_t dim = std::size_t{1} << n_qubits;
    util::cmatrix u(dim, dim);
    std::vector<qsim::amp> scratch(8);
    for (std::size_t col = 0; col < dim; ++col) {
        qsim::statevector state =
            qsim::statevector::basis_state(n_qubits, col);
        for (const fused_op& op : ops) {
            EXPECT_TRUE(op.op == fused_op::kind::unitary) << "gates only";
            if (op.qubits.size() == 1) {
                state.apply_1q(op.matrix, op.qubits[0]);
            } else {
                state.apply_matrix_prepared(op.matrix, op.sorted_qubits,
                                            op.offsets, scratch);
            }
        }
        const std::span<const qsim::amp> amps = state.amplitudes();
        for (std::size_t row = 0; row < dim; ++row) {
            u(row, col) = amps[row];
        }
    }
    return u;
}

TEST(CompiledProgram, FusedSuffixMatchesUnfusedOnRandomCircuits) {
    util::rng gen(41);
    for (std::size_t trial = 0; trial < 20; ++trial) {
        const std::size_t n = 2 + trial % 3;
        const circuit c = random_circuit(n, 24, gen);
        const util::cmatrix reference = qsim::circuit_unitary(c);
        const std::vector<fused_op> fused =
            qsim::fuse_operations(c.ops(), true);
        const util::cmatrix actual = fused_unitary(fused, n);
        EXPECT_LT(actual.distance(reference), 1e-10) << "trial " << trial;
    }
}

TEST(CompiledProgram, SingleQubitOnlyFusionAlsoMatches) {
    util::rng gen(43);
    for (std::size_t trial = 0; trial < 10; ++trial) {
        const circuit c = random_circuit(3, 20, gen);
        const util::cmatrix reference = qsim::circuit_unitary(c);
        const std::vector<fused_op> fused =
            qsim::fuse_operations(c.ops(), false);
        const util::cmatrix actual = fused_unitary(fused, 3);
        EXPECT_LT(actual.distance(reference), 1e-10) << "trial " << trial;
    }
}

TEST(CompiledProgram, FusionShrinksTheAnsatzSuffix) {
    util::rng gen(7);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const compiled_program program = compiled_program::compile(
        qml::autoencoder_template(params, 1));
    ASSERT_TRUE(program.has_fused_suffix());
    EXPECT_GT(program.suffix_gate_count(), 0u);
    // RX+RZ rows merge, and rotations fold into the CX ladder blocks: the
    // fused suffix must be materially smaller than the gate list.
    EXPECT_LT(2 * program.fused_unitary_count(), program.suffix_gate_count());
    for (const fused_op& op : program.fused_suffix()) {
        if (op.op == fused_op::kind::unitary) {
            EXPECT_TRUE(op.matrix.is_unitary(1e-9));
        }
    }
}

TEST(CompiledProgram, SplitsSlotsPrefixAndSuffix) {
    util::rng gen(11);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const compiled_program program = compiled_program::compile(
        qml::autoencoder_template(params, 1));
    // Full circuit: two initialize slots (registers A and B), no prefix,
    // one terminal measure on the ancilla.
    EXPECT_EQ(program.num_qubits(), 7u);
    ASSERT_EQ(program.slots().size(), 2u);
    EXPECT_EQ(program.slots()[0].qubits.size(), 3u);
    EXPECT_TRUE(program.prefix().empty());
    ASSERT_EQ(program.measures().size(), 1u);
    EXPECT_EQ(program.measures()[0].second, qml::swap_result_cbit);
}

TEST(CompiledProgram, ParameterizedPrefixSubstitutesAngles) {
    circuit c(2);
    c.ry(0.0, 0).rz(0.0, 1).cx(0, 1);
    compiled_program::options options;
    options.parameterized_ops = 3;
    const compiled_program program = compiled_program::compile(c, options);
    EXPECT_EQ(program.prefix().size(), 3u);
    EXPECT_EQ(program.prefix_param_count(), 2u);
    EXPECT_TRUE(program.suffix().empty());

    const double angles[] = {0.4, -1.3};
    const circuit materialized = program.materialize({}, angles);
    ASSERT_EQ(materialized.ops().size(), 3u);
    EXPECT_DOUBLE_EQ(materialized.ops()[0].params[0], 0.4);
    EXPECT_DOUBLE_EQ(materialized.ops()[1].params[0], -1.3);
}

TEST(CompiledProgram, MaterializeReproducesTheOriginalCircuit) {
    util::rng gen(13);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    std::vector<double> features(7);
    for (double& f : features) {
        f = gen.uniform() * 0.3;
    }
    const std::vector<double> amps = qml::to_amplitudes(features, 3);
    const circuit original =
        qml::build_autoencoder_circuit(amps, params, 1);
    const compiled_program program = compiled_program::compile(
        qml::autoencoder_template(params, 1));
    const circuit rebuilt = program.materialize(amps);
    // Barriers are dropped; every remaining op must match in order.
    std::vector<qsim::operation> expected;
    for (const qsim::operation& op : original.ops()) {
        if (op.kind != qsim::op_kind::barrier) {
            expected.push_back(op);
        }
    }
    ASSERT_EQ(rebuilt.ops().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(rebuilt.ops()[i].kind, expected[i].kind) << i;
        EXPECT_EQ(rebuilt.ops()[i].gate, expected[i].gate) << i;
        EXPECT_EQ(rebuilt.ops()[i].qubits, expected[i].qubits) << i;
        EXPECT_EQ(rebuilt.ops()[i].params, expected[i].params) << i;
        EXPECT_EQ(rebuilt.ops()[i].init_amplitudes,
                  expected[i].init_amplitudes)
            << i;
    }
}

TEST(CompiledProgram, ResetsAndMeasuresFenceFusion) {
    circuit c(2, 1);
    c.h(0).h(1).reset(0).h(0).measure(0, 0);
    const compiled_program program = compiled_program::compile(c);
    ASSERT_TRUE(program.has_fused_suffix());
    const std::vector<fused_op>& fused = program.fused_suffix();
    // h(0), h(1) fuse-or-stay before the reset; h(0) after it must not
    // merge across the fence.
    ASSERT_EQ(fused.size(), 5u);
    EXPECT_EQ(fused[2].op, fused_op::kind::reset);
    EXPECT_EQ(fused[3].op, fused_op::kind::unitary);
    EXPECT_EQ(fused[4].op, fused_op::kind::measure);
}

TEST(CompiledProgram, RejectsNonTerminalMeasurements) {
    circuit c(1, 1);
    c.measure(0, 0);
    c.x(0);
    EXPECT_THROW((void)compiled_program::compile(c),
                 quorum::util::contract_error);
}

TEST(CompiledProgram, RejectsOverlongParameterizedPrefix) {
    circuit c(1);
    c.rx(0.1, 0);
    compiled_program::options options;
    options.parameterized_ops = 2;
    EXPECT_THROW((void)compiled_program::compile(c, options),
                 quorum::util::contract_error);
}

TEST(CompiledProgram, SharedSuffixOpsFindsTheNestedResetPrefix) {
    // Two compression levels of one Quorum group share state prep,
    // encoder, and the nested reset run: level 2's suffix is level 1's
    // [encoder + reset] prefix plus one more reset before the decoder.
    util::rng gen(33);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const compiled_program level1 = compiled_program::compile(
        qml::autoencoder_reg_a_template(params, 1));
    const compiled_program level2 = compiled_program::compile(
        qml::autoencoder_reg_a_template(params, 2));

    const std::size_t shared = qsim::shared_suffix_ops(level1, level2);
    // Everything up to and including the first reset is shared; the next
    // op diverges (decoder gate vs. second reset).
    std::size_t first_reset = 0;
    while (level1.suffix()[first_reset].op.kind != qsim::op_kind::reset) {
        ++first_reset;
    }
    EXPECT_EQ(shared, first_reset + 1);
    EXPECT_EQ(qsim::shared_suffix_ops(level1, level1),
              level1.suffix().size());
}

TEST(CompiledProgram, SharedSuffixOpsIsZeroForDifferentAngles) {
    util::rng gen(35);
    const qml::ansatz_params a = qml::random_ansatz_params(3, 2, gen);
    const qml::ansatz_params b = qml::random_ansatz_params(3, 2, gen);
    const compiled_program first = compiled_program::compile(
        qml::autoencoder_reg_a_template(a, 1));
    const compiled_program second = compiled_program::compile(
        qml::autoencoder_reg_a_template(b, 1));
    EXPECT_EQ(qsim::shared_suffix_ops(first, second), 0u);
}

TEST(CompiledProgram, TrailingGateRunIsTheDecoder) {
    // The register-A program ends in the decoder: a pure gate run after
    // the last reset, exactly what the SWAP-test short-circuit adjoints.
    util::rng gen(37);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const compiled_program program = compiled_program::compile(
        qml::autoencoder_reg_a_template(params, 2));
    const std::size_t start = qsim::trailing_gate_run_start(program);
    ASSERT_LT(start, program.suffix().size());
    EXPECT_EQ(program.suffix()[start - 1].op.kind, qsim::op_kind::reset);
    for (std::size_t i = start; i < program.suffix().size(); ++i) {
        EXPECT_EQ(program.suffix()[i].op.kind, qsim::op_kind::gate);
    }
    // Decoder length == encoder length for the inverse ansatz: the suffix
    // is encoder + 2 resets + decoder.
    const std::size_t decoder_gates = program.suffix().size() - start;
    EXPECT_EQ(2 * decoder_gates + 2, program.suffix().size());
}

TEST(CompiledProgram, ReplaysIdenticallyComparesParamsAndMatrices) {
    circuit a(2);
    a.rx(0.25, 0);
    circuit b(2);
    b.rx(0.25, 0);
    circuit c(2);
    c.rx(0.5, 0);
    const compiled_program pa = compiled_program::compile(a);
    const compiled_program pb = compiled_program::compile(b);
    const compiled_program pc = compiled_program::compile(c);
    EXPECT_TRUE(qsim::replays_identically(pa.suffix()[0], pb.suffix()[0]));
    EXPECT_FALSE(qsim::replays_identically(pa.suffix()[0], pc.suffix()[0]));
}

} // namespace
