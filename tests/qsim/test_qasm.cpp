#include <sstream>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qsim/qasm.h"
#include "qsim/statevector_runner.h"
#include "qsim/transpile.h"
#include "util/rng.h"

namespace {

using namespace quorum::qsim;

TEST(Qasm, HeaderAndRegisters) {
    circuit c(3, 1);
    c.h(0).measure(0, 0);
    const std::string qasm = to_qasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("include \"qelib1.inc\";"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(qasm.find("creg c[1];"), std::string::npos);
}

TEST(Qasm, NoClassicalRegisterWhenUnused) {
    circuit c(2);
    c.x(0);
    const std::string qasm = to_qasm(c);
    EXPECT_EQ(qasm.find("creg"), std::string::npos);
}

TEST(Qasm, GateStatements) {
    circuit c(3, 1);
    c.h(0).cx(0, 1).rz(0.5, 2).cswap(0, 1, 2).reset(1).measure(2, 0)
        .barrier();
    const std::string qasm = to_qasm(c);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.5) q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("cswap q[0],q[1],q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("reset q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[2] -> c[0];"), std::string::npos);
    EXPECT_NE(qasm.find("barrier q;"), std::string::npos);
}

TEST(Qasm, AnglesRoundTripPrecision) {
    circuit c(1);
    const double theta = 1.2345678901234567;
    c.rx(theta, 0);
    const std::string qasm = to_qasm(c);
    // 17 significant digits preserve the double exactly.
    EXPECT_NE(qasm.find("1.2345678901234567"), std::string::npos);
}

TEST(Qasm, InitializeIsSynthesised) {
    circuit c(2);
    const qubit_t reg[] = {0, 1};
    const std::vector<double> amps{0.5, 0.5, 0.5, 0.5};
    c.initialize(reg, std::span<const double>(amps));
    const std::string qasm = to_qasm(c);
    // No raw initialize; RY tree instead.
    EXPECT_EQ(qasm.find("initialize"), std::string::npos);
    EXPECT_NE(qasm.find("ry("), std::string::npos);
}

TEST(Qasm, FullQuorumCircuitExports) {
    quorum::util::rng gen(3);
    const auto params = quorum::qml::random_ansatz_params(3, 2, gen);
    std::vector<double> features(7, 0.2);
    const auto amps = quorum::qml::to_amplitudes(features, 3);
    const circuit c = quorum::qml::build_autoencoder_circuit(amps, params, 1);
    const std::string qasm = to_qasm(c);
    EXPECT_NE(qasm.find("qreg q[7];"), std::string::npos);
    EXPECT_NE(qasm.find("cswap"), std::string::npos);
    EXPECT_NE(qasm.find("reset"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[6] -> c[0];"), std::string::npos);
    // Should be a substantial program.
    EXPECT_GT(qasm.size(), 500u);
}

TEST(Qasm, TranspiledCircuitUsesBasisGatesOnly) {
    circuit c(2, 1);
    c.h(0).cz(0, 1).measure(1, 0);
    const std::string qasm = to_qasm(transpile_for_hardware(c));
    EXPECT_EQ(qasm.find("h q"), std::string::npos);
    EXPECT_EQ(qasm.find("cz"), std::string::npos);
    EXPECT_NE(qasm.find("sx q"), std::string::npos);
    EXPECT_NE(qasm.find("cx q"), std::string::npos);
}

TEST(Qasm, StreamOverloadMatchesString) {
    circuit c(1);
    c.h(0);
    std::ostringstream out;
    write_qasm(out, c);
    EXPECT_EQ(out.str(), to_qasm(c));
}


TEST(QasmParse, RoundTripPreservesSemantics) {
    quorum::util::rng gen(7);
    for (int trial = 0; trial < 8; ++trial) {
        circuit original(3);
        for (int g = 0; g < 10; ++g) {
            const auto q = static_cast<qubit_t>(gen.uniform_index(3));
            const auto q2 =
                static_cast<qubit_t>((q + 1 + gen.uniform_index(2)) % 3);
            switch (gen.uniform_index(5)) {
            case 0:
                original.rx(gen.angle(), q);
                break;
            case 1:
                original.u3(gen.angle(), gen.angle(), gen.angle(), q);
                break;
            case 2:
                original.cx(q, q2);
                break;
            case 3:
                original.h(q);
                break;
            default:
                original.t(q);
                break;
            }
        }
        const circuit restored = from_qasm(to_qasm(original));
        EXPECT_EQ(restored.num_qubits(), original.num_qubits());
        EXPECT_TRUE(circuit_unitary(restored).equals_up_to_phase(
            circuit_unitary(original), 1e-9));
    }
}

TEST(QasmParse, RoundTripWithResetAndMeasure) {
    circuit original(2, 1);
    original.h(0).cx(0, 1).reset(0).ry(0.7, 0).measure(1, 0);
    const circuit restored = from_qasm(to_qasm(original));
    quorum::util::rng gen(9);
    const double p_original =
        statevector_runner::run_exact(original).cbit_probability_one(0);
    const double p_restored =
        statevector_runner::run_exact(restored).cbit_probability_one(0);
    EXPECT_NEAR(p_original, p_restored, 1e-12);
}

TEST(QasmParse, PiExpressions) {
    const circuit c = from_qasm("OPENQASM 2.0;\n"
                                "include \"qelib1.inc\";\n"
                                "qreg q[1];\n"
                                "rz(pi/2) q[0];\n"
                                "rx(-pi) q[0];\n"
                                "ry(3*pi/4) q[0];\n");
    ASSERT_EQ(c.gate_count(), 3u);
    EXPECT_NEAR(c.ops()[0].params[0], pi / 2.0, 1e-12);
    EXPECT_NEAR(c.ops()[1].params[0], -pi, 1e-12);
    EXPECT_NEAR(c.ops()[2].params[0], 3.0 * pi / 4.0, 1e-12);
}

TEST(QasmParse, CommentsAndBlankLinesIgnored)  {
    const circuit c = from_qasm("OPENQASM 2.0;\n"
                                "// a comment line\n"
                                "\n"
                                "qreg q[2];\n"
                                "x q[0]; // trailing comment\n");
    EXPECT_EQ(c.gate_count(), 1u);
}

TEST(QasmParse, ErrorsCarryLineNumbers) {
    try {
        (void)from_qasm("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n");
        FAIL() << "expected parse error";
    } catch (const quorum::util::contract_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(QasmParse, RejectsMalformedPrograms) {
    EXPECT_THROW((void)from_qasm("qreg q[2];\n"),
                 quorum::util::contract_error); // no header
    EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nx q[0];\n"),
                 quorum::util::contract_error); // statement before qreg
    EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[1];\nx q[0]\n"),
                 quorum::util::contract_error); // missing semicolon
    EXPECT_THROW((void)from_qasm(
                     "OPENQASM 2.0;\nqreg q[1];\nrx(nonsense) q[0];\n"),
                 quorum::util::contract_error); // bad angle
    EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n"),
                 quorum::util::contract_error); // wrong arity
}

TEST(QasmParse, WrongOperandCountRejected) {
    EXPECT_THROW(
        (void)from_qasm("OPENQASM 2.0;\nqreg q[3];\nrx q[0];\n"),
        quorum::util::contract_error); // rx needs a parameter
}

TEST(QasmParse, RejectsNonNumericIndices) {
    // Regression: register indices used to go through std::atoi, which
    // silently turned "x" into 0 — `creg c[x]` parsed as an empty
    // classical register. All index tokens are now strictly parsed.
    EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[x];\n"),
                 quorum::util::contract_error); // qreg size
    EXPECT_THROW((void)from_qasm("OPENQASM 2.0;\nqreg q[2x];\n"),
                 quorum::util::contract_error); // trailing garbage
    EXPECT_THROW(
        (void)from_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c[x];\n"),
        quorum::util::contract_error); // creg size
    EXPECT_THROW(
        (void)from_qasm("OPENQASM 2.0;\nqreg q[2];\nx q[banana];\n"),
        quorum::util::contract_error); // qubit operand
    EXPECT_THROW(
        (void)from_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n"
                        "measure q[0] -> c[x];\n"),
        quorum::util::contract_error); // classical-bit index
}

TEST(QasmParse, IndexErrorsNameTheOffendingToken) {
    try {
        (void)from_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n"
                        "measure q[0] -> c[x];\n");
        FAIL() << "expected parse error";
    } catch (const quorum::util::contract_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'x'"), std::string::npos)
            << "diagnostic should quote the bad token: " << what;
        EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    }
}

TEST(QasmParse, RejectsOutOfRangeClassicalBit) {
    try {
        (void)from_qasm("OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\n"
                        "measure q[0] -> c[5];\n");
        FAIL() << "expected parse error";
    } catch (const quorum::util::contract_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("classical-bit index 5"), std::string::npos)
            << what;
        EXPECT_NE(what.find("creg c[1]"), std::string::npos) << what;
    }
}

} // namespace
