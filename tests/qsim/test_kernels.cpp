// Scalar-vs-AVX2 bit-exactness suite for the kernel layer. Every
// comparison here is IEEE == on the raw double bits: the AVX2 kernels are
// contractually bit-identical to the scalar reference (qsim/kernels.h),
// which is what keeps the golden fixtures stable across ISAs.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "qsim/bit_ops.h"
#include "qsim/kernels.h"
#include "qsim/statevector.h"
#include "util/rng.h"

namespace {

using quorum::qsim::amp;
using quorum::qsim::make_offsets;
using quorum::qsim::qubit_t;
namespace kernels = quorum::qsim::kernels;

bool both_isas_available() {
    return kernels::avx2_compiled() && kernels::avx2_supported();
}

std::vector<amp> random_state(std::size_t dim, quorum::util::rng& gen) {
    std::vector<amp> state(dim);
    for (amp& a : state) {
        a = amp{gen.uniform(-1.0, 1.0), gen.uniform(-1.0, 1.0)};
    }
    return state;
}

std::vector<amp> random_matrix(std::size_t block, quorum::util::rng& gen) {
    return random_state(block * block, gen);
}

/// Bit-pattern equality (distinguishes -0.0 from +0.0 and compares NaN
/// payloads, unlike operator==) — the strongest form of "identical".
::testing::AssertionResult bits_equal(const std::vector<amp>& a,
                                      const std::vector<amp>& b) {
    if (a.size() != b.size()) {
        return ::testing::AssertionFailure() << "size mismatch";
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto re_a = std::bit_cast<std::uint64_t>(a[i].real());
        const auto re_b = std::bit_cast<std::uint64_t>(b[i].real());
        const auto im_a = std::bit_cast<std::uint64_t>(a[i].imag());
        const auto im_b = std::bit_cast<std::uint64_t>(b[i].imag());
        if (re_a != re_b || im_a != im_b) {
            return ::testing::AssertionFailure()
                   << "amplitude " << i << " differs: (" << a[i].real() << ", "
                   << a[i].imag() << ") vs (" << b[i].real() << ", "
                   << b[i].imag() << ")";
        }
    }
    return ::testing::AssertionSuccess();
}

/// Operand sets exercising every layout regime at a given n: adjacent low
/// (contiguous 256-bit loads), high/wrapping (strided pairs), mixed
/// strides, and permuted (unsorted) declaration order.
std::vector<std::vector<qubit_t>> operand_sets(std::size_t n, std::size_t k) {
    std::vector<std::vector<qubit_t>> sets;
    if (n < k) {
        return sets;
    }
    const auto hi = static_cast<qubit_t>(n - 1);
    if (k == 2) {
        sets.push_back({0, 1});
        if (n >= 3) {
            sets.push_back({0, hi});            // max stride
            sets.push_back({hi, 0});            // permuted order
            sets.push_back({1, 2});             // off-origin adjacent
        }
        if (n >= 4) {
            sets.push_back({static_cast<qubit_t>(hi - 1), hi}); // top pair
        }
    } else if (k == 3) {
        sets.push_back({0, 1, 2});
        if (n >= 4) {
            sets.push_back({0, 1, hi});
            sets.push_back({hi, 1, 0}); // permuted order
        }
        if (n >= 5) {
            sets.push_back({1, static_cast<qubit_t>(n / 2), hi});
        }
    } else if (k == 4) {
        sets.push_back({0, 1, 2, 3});
        if (n >= 5) {
            sets.push_back({0, 2, static_cast<qubit_t>(hi - 1), hi});
            sets.push_back({hi, 0, 2, 1}); // permuted order
        }
    }
    // Drop sets with duplicate/overflowing qubits at small n.
    std::erase_if(sets, [n](const std::vector<qubit_t>& qs) {
        for (std::size_t i = 0; i < qs.size(); ++i) {
            if (qs[i] >= n) {
                return true;
            }
            for (std::size_t j = i + 1; j < qs.size(); ++j) {
                if (qs[i] == qs[j]) {
                    return true;
                }
            }
        }
        return false;
    });
    return sets;
}

TEST(kernels, apply_1q_avx2_matches_scalar_bit_for_bit) {
    if (!both_isas_available()) {
        GTEST_SKIP() << "AVX2 kernels not available on this build/host";
    }
    quorum::util::rng gen(20250801);
    for (std::size_t n = 1; n <= 12; ++n) {
        const std::size_t dim = std::size_t{1} << n;
        for (qubit_t q = 0; q < n; ++q) {
            const std::vector<amp> u = random_matrix(2, gen);
            const std::vector<amp> input = random_state(dim, gen);
            std::vector<amp> scalar = input;
            std::vector<amp> avx2 = input;
            kernels::apply_1q(scalar.data(), n, u.data(), q,
                              kernels::isa::scalar);
            kernels::apply_1q(avx2.data(), n, u.data(), q,
                              kernels::isa::avx2);
            EXPECT_TRUE(bits_equal(scalar, avx2))
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(kernels, apply_block_avx2_matches_scalar_bit_for_bit) {
    if (!both_isas_available()) {
        GTEST_SKIP() << "AVX2 kernels not available on this build/host";
    }
    quorum::util::rng gen(20250802);
    for (std::size_t n = 2; n <= 12; ++n) {
        const std::size_t dim = std::size_t{1} << n;
        for (std::size_t k = 2; k <= 4; ++k) {
            for (const std::vector<qubit_t>& qubits : operand_sets(n, k)) {
                const std::size_t block = std::size_t{1} << k;
                const std::vector<amp> u = random_matrix(block, gen);
                const std::vector<std::size_t> offsets = make_offsets(qubits);
                std::vector<qubit_t> sorted = qubits;
                std::sort(sorted.begin(), sorted.end());
                const std::vector<amp> input = random_state(dim, gen);
                std::vector<amp> scratch(block);
                std::vector<amp> scalar = input;
                std::vector<amp> avx2 = input;
                kernels::apply_block(scalar.data(), n, u.data(), sorted,
                                     offsets, scratch.data(),
                                     kernels::isa::scalar);
                kernels::apply_block(avx2.data(), n, u.data(), sorted,
                                     offsets, scratch.data(),
                                     kernels::isa::avx2);
                EXPECT_TRUE(bits_equal(scalar, avx2))
                    << "n=" << n << " k=" << k << " q0=" << qubits[0];
            }
        }
    }
}

TEST(kernels, collapse_avx2_matches_scalar_bit_for_bit) {
    if (!both_isas_available()) {
        GTEST_SKIP() << "AVX2 kernels not available on this build/host";
    }
    quorum::util::rng gen(20250803);
    for (std::size_t n = 1; n <= 12; ++n) {
        const std::size_t dim = std::size_t{1} << n;
        for (qubit_t q = 0; q < n; ++q) {
            for (const bool outcome : {false, true}) {
                const double scale = gen.uniform(0.5, 2.0);
                const std::vector<amp> input = random_state(dim, gen);
                std::vector<amp> scalar = input;
                std::vector<amp> avx2 = input;
                kernels::collapse(scalar.data(), n, q, outcome, scale,
                                  kernels::isa::scalar);
                kernels::collapse(avx2.data(), n, q, outcome, scale,
                                  kernels::isa::avx2);
                EXPECT_TRUE(bits_equal(scalar, avx2))
                    << "n=" << n << " q=" << q << " outcome=" << outcome;
            }
        }
    }
}

TEST(kernels, collapse_zeroes_are_positive_zero) {
    // The scalar reference ASSIGNS 0.0 to pruned amplitudes; a
    // multiply-by-zero implementation would leak -0.0 from negative
    // inputs. Pin the assignment semantics on both ISAs.
    for (const kernels::isa which : {kernels::isa::scalar,
                                     kernels::isa::avx2}) {
        if (which == kernels::isa::avx2 && !both_isas_available()) {
            continue;
        }
        std::vector<amp> state(16, amp{-1.0, -1.0});
        kernels::collapse(state.data(), 4, 1, true, 1.0, which);
        for (std::size_t i = 0; i < state.size(); ++i) {
            if ((i & 2u) == 0) {
                EXPECT_EQ(std::bit_cast<std::uint64_t>(state[i].real()),
                          std::bit_cast<std::uint64_t>(0.0));
                EXPECT_EQ(std::bit_cast<std::uint64_t>(state[i].imag()),
                          std::bit_cast<std::uint64_t>(0.0));
            }
        }
    }
}

TEST(kernels, dispatch_honours_disable_env_var) {
    if (!kernels::avx2_compiled() || !kernels::avx2_supported()) {
        EXPECT_EQ(kernels::detect_isa(), kernels::isa::scalar);
        GTEST_SKIP() << "AVX2 kernels not available on this build/host";
    }
    const char* before = std::getenv("QUORUM_DISABLE_AVX2");
    ASSERT_EQ(setenv("QUORUM_DISABLE_AVX2", "1", 1), 0);
    EXPECT_EQ(kernels::detect_isa(), kernels::isa::scalar);
    if (before == nullptr) {
        ASSERT_EQ(unsetenv("QUORUM_DISABLE_AVX2"), 0);
        EXPECT_EQ(kernels::detect_isa(), kernels::isa::avx2);
    } else {
        ASSERT_EQ(setenv("QUORUM_DISABLE_AVX2", before, 1), 0);
    }
}

TEST(kernels, statevector_and_kernel_apply_agree) {
    // The statevector engine routes through the dispatching kernel
    // overloads; a direct kernel call on the raw amplitudes must match.
    quorum::util::rng gen(20250804);
    const std::size_t n = 6;
    std::vector<amp> raw = random_state(std::size_t{1} << n, gen);
    double norm = 0.0;
    for (const amp& a : raw) {
        norm += std::norm(a);
    }
    const double inv = 1.0 / std::sqrt(norm);
    for (amp& a : raw) {
        a *= inv;
    }
    quorum::qsim::statevector state =
        quorum::qsim::statevector::from_amplitudes(raw);
    const std::vector<amp> u = random_matrix(2, gen);
    const quorum::util::cmatrix m =
        quorum::util::cmatrix::from_rows(2, 2, u);
    state.apply_1q(m, 3);
    kernels::apply_1q(raw.data(), n, u.data(), 3);
    EXPECT_TRUE(bits_equal(
        raw, std::vector<amp>(state.amplitudes().begin(),
                              state.amplitudes().end())));
}

} // namespace
