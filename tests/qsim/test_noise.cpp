#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qsim/noise.h"

namespace {

using namespace quorum::qsim;
namespace util = quorum::util;

TEST(NoiseModel, IdealModelIsIdeal) {
    const noise_model nm = noise_model::ideal();
    EXPECT_TRUE(nm.is_ideal());
    EXPECT_DOUBLE_EQ(nm.depolarizing_param(gate_kind::sx), 0.0);
    EXPECT_DOUBLE_EQ(nm.duration_ns(gate_kind::cx), 0.0);
    EXPECT_TRUE(nm.thermal_kraus(1000.0).empty());
    EXPECT_DOUBLE_EQ(nm.apply_readout(0.3), 0.3);
}

TEST(NoiseModel, BrisbaneUsesPaperMedians) {
    const noise_model nm = noise_model::ibm_brisbane_median();
    EXPECT_FALSE(nm.is_ideal());
    // 1q: p = 2 * r = 2 * 2.274e-4.
    EXPECT_NEAR(nm.depolarizing_param(gate_kind::sx), 2.0 * 2.274e-4, 1e-12);
    // 2q: p = (4/3) * r = (4/3) * 2.903e-3.
    EXPECT_NEAR(nm.depolarizing_param(gate_kind::cx), 4.0 / 3.0 * 2.903e-3,
                1e-12);
    // rz is virtual: no error, no duration.
    EXPECT_DOUBLE_EQ(nm.depolarizing_param(gate_kind::rz), 0.0);
    EXPECT_DOUBLE_EQ(nm.duration_ns(gate_kind::rz), 0.0);
    // Readout error 1.38e-2 symmetric.
    EXPECT_NEAR(nm.readout().p1_given_0, 1.38e-2, 1e-12);
    EXPECT_NEAR(nm.readout().p0_given_1, 1.38e-2, 1e-12);
}

TEST(NoiseModel, ThermalCoefficientMath) {
    noise_model nm;
    nm.set_thermal(thermal_params{100.0, 80.0}); // T1=100us, T2=80us
    // At t = T1: gamma = 1 - 1/e.
    const auto at_t1 = nm.thermal_coefficients(100.0 * 1000.0);
    EXPECT_NEAR(at_t1.gamma, 1.0 - std::exp(-1.0), 1e-9);
    // 1/Tphi = 1/80 - 1/200 = 0.0075 -> lambda at t=100us.
    EXPECT_NEAR(at_t1.lambda, 1.0 - std::exp(-100.0 * 0.0075), 1e-9);
}

TEST(NoiseModel, ThermalZeroDurationIsNoise_Free) {
    const noise_model nm = noise_model::ibm_brisbane_median();
    const auto coeff = nm.thermal_coefficients(0.0);
    EXPECT_DOUBLE_EQ(coeff.gamma, 0.0);
    EXPECT_DOUBLE_EQ(coeff.lambda, 0.0);
}

TEST(NoiseModel, ThermalKrausIsTracePreserving) {
    const noise_model nm = noise_model::ibm_brisbane_median();
    for (const double duration : {60.0, 660.0, 1300.0, 50000.0}) {
        const auto kraus = nm.thermal_kraus(duration);
        ASSERT_FALSE(kraus.empty());
        util::cmatrix sum(2, 2);
        for (const auto& k : kraus) {
            const util::cmatrix contribution = k.adjoint().multiply(k);
            for (std::size_t r = 0; r < 2; ++r) {
                for (std::size_t c = 0; c < 2; ++c) {
                    sum(r, c) += contribution(r, c);
                }
            }
        }
        EXPECT_NEAR(sum.distance(util::cmatrix::identity(2)), 0.0, 1e-10)
            << "duration " << duration;
    }
}

TEST(NoiseModel, T2GreaterThanTwoT1Rejected) {
    noise_model nm;
    nm.set_thermal(thermal_params{10.0, 25.0}); // T2 > 2*T1: unphysical
    EXPECT_THROW((void)nm.thermal_coefficients(100.0), util::contract_error);
}

TEST(NoiseModel, ReadoutFlipBothDirections) {
    noise_model nm;
    nm.set_readout(readout_error{0.1, 0.2}); // p(1|0)=0.1, p(0|1)=0.2
    // Pure |0>: reads 1 with probability 0.1.
    EXPECT_NEAR(nm.apply_readout(0.0), 0.1, 1e-12);
    // Pure |1>: reads 1 with probability 0.8.
    EXPECT_NEAR(nm.apply_readout(1.0), 0.8, 1e-12);
    // Mixed.
    EXPECT_NEAR(nm.apply_readout(0.5), 0.5 * 0.8 + 0.5 * 0.1, 1e-12);
}

TEST(NoiseModel, GateErrorValidation) {
    noise_model nm;
    EXPECT_THROW(nm.set_gate_error(gate_kind::sx, -0.1),
                 util::contract_error);
    EXPECT_THROW(nm.set_gate_error(gate_kind::sx, 1.0), util::contract_error);
    EXPECT_NO_THROW(nm.set_gate_error(gate_kind::sx, 0.01));
}

TEST(NoiseModel, DurationValidation) {
    noise_model nm;
    EXPECT_THROW(nm.set_gate_duration(gate_kind::cx, -5.0),
                 util::contract_error);
}

TEST(NoiseModel, ZeroErrorModelCountsAsIdeal) {
    noise_model nm;
    nm.set_gate_error(gate_kind::sx, 0.0);
    EXPECT_TRUE(nm.is_ideal());
}

} // namespace
