#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qsim/density_runner.h"
#include "qsim/noise.h"
#include "qsim/statevector_runner.h"
#include "util/rng.h"

namespace {

using namespace quorum::qsim;

TEST(StatevectorRunner, GatesOnlyCircuitSingleBranch) {
    circuit c(2, 1);
    c.h(0).cx(0, 1).measure(1, 0);
    const exact_run_result result = statevector_runner::run_exact(c);
    ASSERT_EQ(result.branches.size(), 1u);
    EXPECT_NEAR(result.branches[0].weight, 1.0, 1e-12);
    EXPECT_NEAR(result.cbit_probability_one(0), 0.5, 1e-12);
}

TEST(StatevectorRunner, ResetSplitsIntoWeightedBranches) {
    circuit c(1);
    const double theta = 2.0 * std::acos(std::sqrt(0.3)); // P(1) = 0.7
    c.ry(theta, 0).reset(0);
    const exact_run_result result = statevector_runner::run_exact(c);
    ASSERT_EQ(result.branches.size(), 2u);
    double total = 0.0;
    for (const branch& b : result.branches) {
        total += b.weight;
        // After reset both branches sit in |0>.
        EXPECT_NEAR(b.state.probability_one(0), 0.0, 1e-12);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StatevectorRunner, DeterministicResetDoesNotBranch) {
    circuit c(2);
    c.x(0).reset(0); // qubit definitely |1>: single branch after collapse
    const exact_run_result result = statevector_runner::run_exact(c);
    EXPECT_EQ(result.branches.size(), 1u);
}

TEST(StatevectorRunner, ResetOfEntangledQubitCreatesMixture) {
    circuit c(2, 1);
    c.h(0).cx(0, 1).reset(0).measure(1, 0);
    const exact_run_result result = statevector_runner::run_exact(c);
    // Partner qubit stays maximally mixed: P(1) = 1/2 exactly.
    EXPECT_NEAR(result.cbit_probability_one(0), 0.5, 1e-12);
    EXPECT_EQ(result.branches.size(), 2u);
}

TEST(StatevectorRunner, MatchesDensityMatrixOnResets) {
    quorum::util::rng gen(41);
    for (int trial = 0; trial < 10; ++trial) {
        circuit c(3, 1);
        c.ry(gen.angle(), 0).cx(0, 1).rx(gen.angle(), 2).cx(1, 2);
        c.reset(1);
        c.ry(gen.angle(), 1).cx(1, 2);
        c.reset(0);
        c.rx(gen.angle(), 0);
        c.measure(2, 0);
        const double p_sv =
            statevector_runner::run_exact(c).cbit_probability_one(0);
        const noisy_run_result dm =
            density_runner::run(c, noise_model::ideal());
        EXPECT_NEAR(p_sv, dm.state.probability_one(2), 1e-10);
    }
}

TEST(StatevectorRunner, RejectsGateAfterMeasure) {
    circuit c(2, 1);
    c.h(0).measure(0, 0).h(0);
    EXPECT_THROW(statevector_runner::run_exact(c),
                 quorum::util::contract_error);
}

TEST(StatevectorRunner, AllowsMeasureOnDifferentQubits) {
    circuit c(2, 2);
    c.h(0).measure(0, 0).h(1).measure(1, 1);
    EXPECT_NO_THROW(statevector_runner::run_exact(c));
}

TEST(StatevectorRunner, UnknownCbitThrows) {
    circuit c(1, 1);
    c.h(0).measure(0, 0);
    const exact_run_result result = statevector_runner::run_exact(c);
    EXPECT_THROW((void)result.cbit_probability_one(3),
                 quorum::util::contract_error);
}

TEST(StatevectorRunner, SingleShotReturnsAllCbits) {
    quorum::util::rng gen(43);
    circuit c(2, 2);
    c.x(0).measure(0, 0).measure(1, 1);
    const std::vector<bool> cbits = statevector_runner::run_single_shot(c, gen);
    ASSERT_EQ(cbits.size(), 2u);
    EXPECT_TRUE(cbits[0]);
    EXPECT_FALSE(cbits[1]);
}

TEST(StatevectorRunner, ShotStatisticsMatchExactProbability) {
    quorum::util::rng gen(47);
    circuit c(1, 1);
    const double theta = 2.0 * std::acos(std::sqrt(0.75)); // P(1) = 0.25
    c.ry(theta, 0).measure(0, 0);
    const auto counts = statevector_runner::sample_counts(c, 8000, gen);
    const double frequency =
        static_cast<double>(counts.count(1) ? counts.at(1) : 0) / 8000.0;
    EXPECT_NEAR(frequency, 0.25, 0.02);
}

TEST(StatevectorRunner, CorrelatedMeasurementsInShots) {
    quorum::util::rng gen(53);
    circuit c(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    const auto counts = statevector_runner::sample_counts(c, 4000, gen);
    // Bell state: only 00 (key 0) and 11 (key 3) appear.
    std::size_t correlated = 0;
    for (const auto& [key, count] : counts) {
        EXPECT_TRUE(key == 0 || key == 3) << "key " << key;
        correlated += count;
    }
    EXPECT_EQ(correlated, 4000u);
}

TEST(StatevectorRunner, InitializeOpHandled) {
    circuit c(2, 1);
    const qubit_t reg[] = {0, 1};
    const double r = std::sqrt(0.5);
    const std::vector<double> amps{r, 0.0, 0.0, r};
    c.initialize(reg, std::span<const double>(amps));
    c.measure(1, 0);
    EXPECT_NEAR(statevector_runner::run_exact(c).cbit_probability_one(0), 0.5,
                1e-12);
}

TEST(StatevectorRunner, ShotModeWithResets) {
    quorum::util::rng gen(59);
    circuit c(2, 1);
    c.h(0).cx(0, 1).reset(0).measure(1, 0);
    const auto counts = statevector_runner::sample_counts(c, 4000, gen);
    const double frequency =
        static_cast<double>(counts.count(1) ? counts.at(1) : 0) / 4000.0;
    EXPECT_NEAR(frequency, 0.5, 0.03);
}

} // namespace
