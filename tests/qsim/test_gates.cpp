#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qsim/gates.h"
#include "util/rng.h"

namespace {

using namespace quorum::qsim;
using quorum::util::cmatrix;
using cd = std::complex<double>;

const std::vector<gate_kind> all_gates{
    gate_kind::id, gate_kind::x,   gate_kind::y,    gate_kind::z,
    gate_kind::h,  gate_kind::s,   gate_kind::sdg,  gate_kind::t,
    gate_kind::tdg, gate_kind::sx, gate_kind::rx,   gate_kind::ry,
    gate_kind::rz, gate_kind::u3,  gate_kind::cx,   gate_kind::cz,
    gate_kind::swap_q, gate_kind::ccx, gate_kind::cswap};

std::vector<double> params_for(gate_kind kind, double base) {
    std::vector<double> params(gate_param_count(kind));
    for (std::size_t i = 0; i < params.size(); ++i) {
        params[i] = base + 0.37 * static_cast<double>(i);
    }
    return params;
}

class GateSweep : public ::testing::TestWithParam<gate_kind> {};

TEST_P(GateSweep, MatrixIsUnitary) {
    const gate_kind kind = GetParam();
    const std::vector<double> params = params_for(kind, 0.81);
    const cmatrix u = gate_matrix(kind, params);
    EXPECT_TRUE(u.is_unitary(1e-12)) << gate_name(kind);
}

TEST_P(GateSweep, MatrixDimensionMatchesArity) {
    const gate_kind kind = GetParam();
    const std::vector<double> params = params_for(kind, 0.3);
    const cmatrix u = gate_matrix(kind, params);
    EXPECT_EQ(u.rows(), std::size_t{1} << gate_arity(kind));
}

TEST_P(GateSweep, WrongParamCountThrows) {
    const gate_kind kind = GetParam();
    std::vector<double> wrong(gate_param_count(kind) + 1, 0.5);
    EXPECT_THROW(gate_matrix(kind, wrong), quorum::util::contract_error);
}

TEST_P(GateSweep, InverseComposesToIdentity) {
    const gate_kind kind = GetParam();
    const std::vector<double> params = params_for(kind, 1.1);
    const gate_inverse_result inv = gate_inverse(kind, params);
    if (!inv.supported) {
        return; // sx, u3: no in-set inverse
    }
    std::vector<double> inv_params(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        inv_params[i] = inv.params[i];
    }
    const cmatrix u = gate_matrix(kind, params);
    const cmatrix v = gate_matrix(inv.kind, inv_params);
    const cmatrix product = v.multiply(u);
    EXPECT_TRUE(product.equals_up_to_phase(cmatrix::identity(u.rows()), 1e-10))
        << gate_name(kind);
}

INSTANTIATE_TEST_SUITE_P(AllGates, GateSweep, ::testing::ValuesIn(all_gates));

TEST(Gates, ArityTable) {
    EXPECT_EQ(gate_arity(gate_kind::h), 1u);
    EXPECT_EQ(gate_arity(gate_kind::cx), 2u);
    EXPECT_EQ(gate_arity(gate_kind::cz), 2u);
    EXPECT_EQ(gate_arity(gate_kind::swap_q), 2u);
    EXPECT_EQ(gate_arity(gate_kind::ccx), 3u);
    EXPECT_EQ(gate_arity(gate_kind::cswap), 3u);
}

TEST(Gates, ParamCountTable) {
    EXPECT_EQ(gate_param_count(gate_kind::x), 0u);
    EXPECT_EQ(gate_param_count(gate_kind::rx), 1u);
    EXPECT_EQ(gate_param_count(gate_kind::ry), 1u);
    EXPECT_EQ(gate_param_count(gate_kind::rz), 1u);
    EXPECT_EQ(gate_param_count(gate_kind::u3), 3u);
}

TEST(Gates, NamesAreStable) {
    EXPECT_EQ(gate_name(gate_kind::cswap), "cswap");
    EXPECT_EQ(gate_name(gate_kind::sx), "sx");
    EXPECT_EQ(gate_name(gate_kind::swap_q), "swap");
}

TEST(Gates, PauliMatricesExact) {
    const cmatrix x = gate_matrix(gate_kind::x);
    EXPECT_EQ(x(0, 1), cd(1.0));
    EXPECT_EQ(x(1, 0), cd(1.0));
    EXPECT_EQ(x(0, 0), cd(0.0));

    const cmatrix y = gate_matrix(gate_kind::y);
    EXPECT_EQ(y(0, 1), cd(0.0, -1.0));
    EXPECT_EQ(y(1, 0), cd(0.0, 1.0));

    const cmatrix z = gate_matrix(gate_kind::z);
    EXPECT_EQ(z(0, 0), cd(1.0));
    EXPECT_EQ(z(1, 1), cd(-1.0));
}

TEST(Gates, RotationAtZeroIsIdentity) {
    for (const gate_kind kind :
         {gate_kind::rx, gate_kind::ry, gate_kind::rz}) {
        const std::vector<double> zero{0.0};
        const cmatrix u = gate_matrix(kind, zero);
        EXPECT_TRUE(u.equals_up_to_phase(cmatrix::identity(2), 1e-12));
    }
}

TEST(Gates, RxMatchesPaperDefinition) {
    // Paper §II-A: RX(θ) = [[cos θ/2, -i sin θ/2], [-i sin θ/2, cos θ/2]]
    const double theta = 1.234;
    const std::vector<double> params{theta};
    const cmatrix u = gate_matrix(gate_kind::rx, params);
    EXPECT_NEAR(u(0, 0).real(), std::cos(theta / 2), 1e-12);
    EXPECT_NEAR(u(0, 1).imag(), -std::sin(theta / 2), 1e-12);
    EXPECT_NEAR(u(1, 0).imag(), -std::sin(theta / 2), 1e-12);
}

TEST(Gates, RzMatchesPaperDefinition) {
    const double theta = 0.77;
    const std::vector<double> params{theta};
    const cmatrix u = gate_matrix(gate_kind::rz, params);
    EXPECT_NEAR(std::arg(u(1, 1)), theta / 2, 1e-12);
    EXPECT_NEAR(std::arg(u(0, 0)), -theta / 2, 1e-12);
    EXPECT_EQ(u(0, 1), cd(0.0));
}

TEST(Gates, SxSquaredIsX) {
    const cmatrix sx = gate_matrix(gate_kind::sx);
    EXPECT_TRUE(sx.multiply(sx).equals_up_to_phase(gate_matrix(gate_kind::x),
                                                   1e-12));
}

TEST(Gates, HadamardSquaredIsIdentity) {
    const cmatrix h = gate_matrix(gate_kind::h);
    EXPECT_TRUE(h.multiply(h).equals_up_to_phase(cmatrix::identity(2), 1e-12));
}

TEST(Gates, TSquaredIsS) {
    const cmatrix t = gate_matrix(gate_kind::t);
    const cmatrix s = gate_matrix(gate_kind::s);
    EXPECT_TRUE(t.multiply(t).equals_up_to_phase(s, 1e-12));
}

TEST(Gates, CxLittleEndianConvention) {
    // control = first operand = LSB: |q1 q0> = |01> (index 1) flips q1 ->
    // |11> (index 3).
    const cmatrix cx = gate_matrix(gate_kind::cx);
    EXPECT_EQ(cx(3, 1), cd(1.0));
    EXPECT_EQ(cx(1, 3), cd(1.0));
    EXPECT_EQ(cx(0, 0), cd(1.0));
    EXPECT_EQ(cx(2, 2), cd(1.0));
    EXPECT_EQ(cx(1, 1), cd(0.0));
}

TEST(Gates, CswapSwapsOnControl) {
    // control = bit 0; |011> (3) <-> |101> (5).
    const cmatrix cs = gate_matrix(gate_kind::cswap);
    EXPECT_EQ(cs(3, 5), cd(1.0));
    EXPECT_EQ(cs(5, 3), cd(1.0));
    EXPECT_EQ(cs(2, 2), cd(1.0)); // control clear: untouched
    EXPECT_EQ(cs(4, 4), cd(1.0));
}

TEST(Gates, CcxFlipsOnBothControls) {
    const cmatrix ccx = gate_matrix(gate_kind::ccx);
    EXPECT_EQ(ccx(3, 7), cd(1.0));
    EXPECT_EQ(ccx(7, 3), cd(1.0));
    EXPECT_EQ(ccx(1, 1), cd(1.0));
    EXPECT_EQ(ccx(5, 5), cd(1.0));
}

TEST(Gates, U3GeneralisesRotations) {
    quorum::util::rng gen(4);
    for (int trial = 0; trial < 20; ++trial) {
        const double theta = gen.angle();
        // ry(theta) == u3(theta, 0, 0)
        const std::vector<double> ry_p{theta};
        const std::vector<double> u3_p{theta, 0.0, 0.0};
        EXPECT_TRUE(gate_matrix(gate_kind::u3, u3_p)
                        .equals_up_to_phase(gate_matrix(gate_kind::ry, ry_p),
                                            1e-10));
    }
}

} // namespace
