// Cross-cutting simulator properties: invariants that tie several qsim
// components together (per-shot statistics vs exact probabilities,
// transpiler idempotence, noise-strength monotonicity, purity bounds).
#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qsim/density_runner.h"
#include "qsim/statevector_runner.h"
#include "qsim/transpile.h"
#include "util/rng.h"

namespace {

using namespace quorum::qsim;

circuit random_reset_circuit(std::size_t n, quorum::util::rng& gen) {
    circuit c(n, 1);
    for (int g = 0; g < 10; ++g) {
        const auto q = static_cast<qubit_t>(gen.uniform_index(n));
        const auto q2 =
            static_cast<qubit_t>((q + 1 + gen.uniform_index(n - 1)) % n);
        switch (gen.uniform_index(4)) {
        case 0:
            c.ry(gen.angle(), q);
            break;
        case 1:
            c.rx(gen.angle(), q);
            break;
        case 2:
            c.cx(q, q2);
            break;
        default:
            c.h(q);
            break;
        }
    }
    c.reset(0);
    c.ry(gen.angle(), 0);
    c.cx(0, 1);
    c.measure(static_cast<qubit_t>(n - 1), 0);
    return c;
}

TEST(SimulatorProperties, PerShotFrequencyMatchesExactProbability) {
    // The stochastic per-shot path and the exact branching path must agree
    // statistically: |p_hat - p| within ~5 sigma of Binomial noise.
    quorum::util::rng gen(101);
    for (int trial = 0; trial < 5; ++trial) {
        const circuit c = random_reset_circuit(3, gen);
        const double p_exact =
            statevector_runner::run_exact(c).cbit_probability_one(0);
        const std::size_t shots = 4000;
        std::size_t ones = 0;
        for (std::size_t s = 0; s < shots; ++s) {
            ones += statevector_runner::run_single_shot(c, gen)[0] ? 1 : 0;
        }
        const double p_hat =
            static_cast<double>(ones) / static_cast<double>(shots);
        const double sigma = std::sqrt(
            std::max(1e-6, p_exact * (1.0 - p_exact)) /
            static_cast<double>(shots));
        EXPECT_NEAR(p_hat, p_exact, 5.0 * sigma + 1e-3) << "trial " << trial;
    }
}

TEST(SimulatorProperties, TranspileIsIdempotent) {
    quorum::util::rng gen(103);
    for (int trial = 0; trial < 8; ++trial) {
        circuit c(3);
        for (int g = 0; g < 8; ++g) {
            const auto q = static_cast<qubit_t>(gen.uniform_index(3));
            const auto q2 =
                static_cast<qubit_t>((q + 1 + gen.uniform_index(2)) % 3);
            if (gen.bernoulli(0.5)) {
                c.u3(gen.angle(), gen.angle(), gen.angle(), q);
            } else {
                c.cx(q, q2);
            }
        }
        const circuit once = transpile_for_hardware(c);
        const circuit twice = transpile_for_hardware(once);
        // A second pass must not change the gate count (already in basis,
        // already optimised) and must preserve the unitary.
        EXPECT_EQ(twice.gate_count(), once.gate_count());
        EXPECT_TRUE(circuit_unitary(twice).equals_up_to_phase(
            circuit_unitary(once), 1e-8));
    }
}

TEST(SimulatorProperties, TranspiledDepthScalesWithAnsatzLayers) {
    // Sanity on the cost model: doubling logical content grows the lowered
    // circuit roughly proportionally.
    circuit shallow(3);
    circuit deep(3);
    for (int rep = 0; rep < 1; ++rep) {
        shallow.rx(0.3, 0).rz(0.4, 1).cx(0, 1).cx(1, 2);
    }
    for (int rep = 0; rep < 4; ++rep) {
        deep.rx(0.3, 0).rz(0.4, 1).cx(0, 1).cx(1, 2);
    }
    const std::size_t shallow_gates =
        transpile_for_hardware(shallow).gate_count();
    const std::size_t deep_gates = transpile_for_hardware(deep).gate_count();
    EXPECT_GT(deep_gates, 2 * shallow_gates);
}

TEST(SimulatorProperties, StrongerDepolarizingMonotonicallyLowersPurity) {
    quorum::util::rng gen(107);
    circuit c(3, 1);
    c.h(0).cx(0, 1).cx(1, 2).measure(2, 0);
    double previous_purity = 1.1;
    for (const double error : {0.0, 1e-4, 1e-3, 1e-2, 5e-2}) {
        noise_model nm;
        nm.set_gate_error(gate_kind::cx, error);
        nm.set_gate_error(gate_kind::sx, error / 10.0);
        const noisy_run_result result = density_runner::run(c, nm);
        const double purity = result.state.purity();
        EXPECT_LT(purity, previous_purity + 1e-12) << "error " << error;
        EXPECT_GT(purity, 1.0 / 8.0 - 1e-12); // >= maximally mixed
        previous_purity = purity;
    }
}

TEST(SimulatorProperties, LongerThermalExposureMonotonicallyDecays) {
    circuit c(1, 1);
    c.x(0).measure(0, 0);
    double previous = 1.1;
    for (const double duration : {0.0, 100.0, 1000.0, 10000.0, 100000.0}) {
        noise_model nm;
        nm.set_thermal(thermal_params{100.0, 80.0});
        nm.set_gate_duration(gate_kind::x, duration);
        const noisy_run_result result = density_runner::run(c, nm);
        const double p_one = result.state.probability_one(0);
        EXPECT_LT(p_one, previous + 1e-12) << "duration " << duration;
        previous = p_one;
    }
}

TEST(SimulatorProperties, TraceAlwaysPreservedUnderFullNoise) {
    quorum::util::rng gen(109);
    const noise_model nm = noise_model::ibm_brisbane_median();
    for (int trial = 0; trial < 4; ++trial) {
        const circuit c = random_reset_circuit(3, gen);
        const noisy_run_result result = density_runner::run(c, nm);
        EXPECT_NEAR(result.state.trace_real(), 1.0, 1e-8);
        const double p = result.cbit_probability_one(0, nm);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(SimulatorProperties, BranchWeightsAlwaysSumToOne) {
    quorum::util::rng gen(113);
    for (int trial = 0; trial < 10; ++trial) {
        const circuit c = random_reset_circuit(4, gen);
        const exact_run_result result = statevector_runner::run_exact(c);
        double total = 0.0;
        for (const branch& b : result.branches) {
            total += b.weight;
            EXPECT_NEAR(b.state.norm_squared(), 1.0, 1e-9);
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

class NoiseScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseScaleSweep, ReadoutErrorNeverLeavesUnitInterval) {
    noise_model nm;
    const double e = GetParam();
    nm.set_readout(readout_error{e, e});
    for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
        const double flipped = nm.apply_readout(p);
        EXPECT_GE(flipped, 0.0);
        EXPECT_LE(flipped, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Errors, NoiseScaleSweep,
                         ::testing::Values(0.0, 0.01, 0.1, 0.3, 0.5));

} // namespace
