#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qsim/circuit.h"
#include "qsim/statevector.h"
#include "qsim/transpile.h"
#include "util/rng.h"

namespace {

using namespace quorum::qsim;
namespace util = quorum::util;

circuit random_circuit(std::size_t n, std::size_t gates,
                       quorum::util::rng& gen) {
    circuit c(n);
    for (std::size_t g = 0; g < gates; ++g) {
        const auto q = static_cast<qubit_t>(gen.uniform_index(n));
        const auto q2 =
            static_cast<qubit_t>((q + 1 + gen.uniform_index(n - 1)) % n);
        switch (gen.uniform_index(8)) {
        case 0:
            c.rx(gen.angle(), q);
            break;
        case 1:
            c.ry(gen.angle(), q);
            break;
        case 2:
            c.rz(gen.angle(), q);
            break;
        case 3:
            c.h(q);
            break;
        case 4:
            c.cx(q, q2);
            break;
        case 5:
            c.cz(q, q2);
            break;
        case 6:
            c.t(q);
            break;
        default:
            c.u3(gen.angle(), gen.angle(), gen.angle(), q);
            break;
        }
    }
    return c;
}

TEST(Transpile, BasisGateSet) {
    EXPECT_TRUE(is_basis_gate(gate_kind::rz));
    EXPECT_TRUE(is_basis_gate(gate_kind::sx));
    EXPECT_TRUE(is_basis_gate(gate_kind::x));
    EXPECT_TRUE(is_basis_gate(gate_kind::cx));
    EXPECT_FALSE(is_basis_gate(gate_kind::h));
    EXPECT_FALSE(is_basis_gate(gate_kind::ry));
    EXPECT_FALSE(is_basis_gate(gate_kind::cswap));
}

class SingleGateLowering : public ::testing::TestWithParam<gate_kind> {};

TEST_P(SingleGateLowering, PreservesUnitaryUpToPhase) {
    const gate_kind kind = GetParam();
    const std::size_t arity = gate_arity(kind);
    circuit c(std::max<std::size_t>(arity, 1));
    std::vector<qubit_t> operands(arity);
    for (std::size_t i = 0; i < arity; ++i) {
        operands[i] = static_cast<qubit_t>(i);
    }
    std::vector<double> params(gate_param_count(kind), 0.93);
    c.append_gate(kind, operands, params);
    const circuit lowered = decompose_to_basis(c);
    EXPECT_TRUE(is_basis_circuit(lowered)) << gate_name(kind);
    EXPECT_TRUE(circuit_unitary(lowered).equals_up_to_phase(circuit_unitary(c),
                                                            1e-8))
        << gate_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, SingleGateLowering,
    ::testing::Values(gate_kind::id, gate_kind::x, gate_kind::y, gate_kind::z,
                      gate_kind::h, gate_kind::s, gate_kind::sdg, gate_kind::t,
                      gate_kind::tdg, gate_kind::sx, gate_kind::rx,
                      gate_kind::ry, gate_kind::rz, gate_kind::u3,
                      gate_kind::cx, gate_kind::cz, gate_kind::swap_q,
                      gate_kind::ccx, gate_kind::cswap));

TEST(Transpile, RandomCircuitsPreserved) {
    quorum::util::rng gen(77);
    for (int trial = 0; trial < 15; ++trial) {
        const circuit c = random_circuit(3, 12, gen);
        const circuit lowered = transpile_for_hardware(c);
        EXPECT_TRUE(is_basis_circuit(lowered));
        EXPECT_TRUE(circuit_unitary(lowered)
                        .equals_up_to_phase(circuit_unitary(c), 1e-7));
    }
}

TEST(Transpile, OptimizerMergesAdjacentRz) {
    circuit c(1);
    c.rz(0.3, 0).rz(0.4, 0);
    const circuit optimized = optimize_basis_circuit(c);
    EXPECT_EQ(optimized.gate_count(), 1u);
    EXPECT_NEAR(optimized.ops()[0].params[0], 0.7, 1e-12);
}

TEST(Transpile, OptimizerDropsTrivialRz) {
    circuit c(1);
    c.rz(0.5, 0).rz(-0.5, 0);
    EXPECT_EQ(optimize_basis_circuit(c).gate_count(), 0u);
    circuit zero(1);
    zero.rz(0.0, 0);
    EXPECT_EQ(optimize_basis_circuit(zero).gate_count(), 0u);
}

TEST(Transpile, OptimizerCancelsCxPairs) {
    circuit c(2);
    c.cx(0, 1).cx(0, 1);
    EXPECT_EQ(optimize_basis_circuit(c).gate_count(), 0u);
    // Different operands must NOT cancel.
    circuit keep(3);
    keep.cx(0, 1).cx(1, 0);
    EXPECT_EQ(optimize_basis_circuit(keep).gate_count(), 2u);
}

TEST(Transpile, OptimizerCancelsCascades) {
    circuit c(2);
    c.cx(0, 1).rz(0.4, 0).rz(-0.4, 0).cx(0, 1);
    // rz pair vanishes, then the cx pair collapses too.
    EXPECT_EQ(optimize_basis_circuit(c).gate_count(), 0u);
}

TEST(Transpile, OptimizerKeepsBlockedMerges) {
    circuit c(2);
    c.rz(0.3, 0).cx(0, 1).rz(0.4, 0);
    EXPECT_EQ(optimize_basis_circuit(c).gate_count(), 3u);
}

TEST(Transpile, OptimizerPreservesRandomUnitaries) {
    quorum::util::rng gen(79);
    for (int trial = 0; trial < 10; ++trial) {
        const circuit c = decompose_to_basis(random_circuit(3, 10, gen));
        const circuit optimized = optimize_basis_circuit(c);
        EXPECT_LE(optimized.gate_count(), c.gate_count());
        EXPECT_TRUE(circuit_unitary(optimized)
                        .equals_up_to_phase(circuit_unitary(c), 1e-8));
    }
}

TEST(Transpile, MultiplexedRySingleTarget) {
    circuit c(1);
    const double angles[] = {0.8};
    append_multiplexed_ry(c, {}, 0, angles);
    ASSERT_EQ(c.gate_count(), 1u);
    EXPECT_EQ(c.ops()[0].gate, gate_kind::ry);
}

TEST(Transpile, MultiplexedRyImplementsControlCases) {
    // 1 control: angle[0] when control=0, angle[1] when control=1.
    const double angles[] = {0.6, 1.9};
    for (int control_value = 0; control_value < 2; ++control_value) {
        circuit c(2);
        if (control_value == 1) {
            c.x(1);
        }
        const qubit_t controls[] = {1};
        append_multiplexed_ry(c, controls, 0, angles);
        statevector state(2);
        for (const auto& op : c.ops()) {
            state.apply_gate(op.gate, op.qubits, op.params);
        }
        const double expected = angles[control_value];
        // P(target=1) = sin^2(expected/2).
        const double expected_p1 =
            std::sin(expected / 2) * std::sin(expected / 2);
        EXPECT_NEAR(state.probability_one(0), expected_p1, 1e-10);
    }
}

TEST(Transpile, MultiplexedRyAllZeroAnglesEmitsNothing) {
    circuit c(3);
    const qubit_t controls[] = {1, 2};
    const double angles[] = {0.0, 0.0, 0.0, 0.0};
    append_multiplexed_ry(c, controls, 0, angles);
    EXPECT_EQ(c.gate_count(), 0u);
}

class StatePrepSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StatePrepSweep, SynthesisedCircuitPreparesExactAmplitudes) {
    const std::size_t n = GetParam();
    quorum::util::rng gen(n * 131 + 5);
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t dim = std::size_t{1} << n;
        std::vector<double> amps(dim);
        double norm = 0.0;
        for (double& a : amps) {
            a = gen.uniform();
            norm += a * a;
        }
        for (double& a : amps) {
            a /= std::sqrt(norm);
        }
        const circuit prep = synthesize_state_prep(amps);
        statevector state(n);
        for (const auto& op : prep.ops()) {
            state.apply_gate(op.gate, op.qubits, op.params);
        }
        for (std::size_t j = 0; j < dim; ++j) {
            EXPECT_NEAR(state.amplitudes()[j].real(), amps[j], 1e-9);
            EXPECT_NEAR(state.amplitudes()[j].imag(), 0.0, 1e-12);
        }
    }
}

TEST_P(StatePrepSweep, SparseAmplitudesHandled) {
    const std::size_t n = GetParam();
    const std::size_t dim = std::size_t{1} << n;
    // Only two nonzero amplitudes (first and last).
    std::vector<double> amps(dim, 0.0);
    amps[0] = std::sqrt(0.25);
    amps[dim - 1] = std::sqrt(0.75);
    const circuit prep = synthesize_state_prep(amps);
    statevector state(n);
    for (const auto& op : prep.ops()) {
        state.apply_gate(op.gate, op.qubits, op.params);
    }
    EXPECT_NEAR(std::norm(state.amplitudes()[0]), 0.25, 1e-10);
    EXPECT_NEAR(std::norm(state.amplitudes()[dim - 1]), 0.75, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatePrepSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Transpile, StatePrepRejectsBadInput) {
    const std::vector<double> not_power{0.6, 0.8, 0.0};
    EXPECT_THROW(synthesize_state_prep(not_power),
                 quorum::util::contract_error);
    const std::vector<double> not_normalised{1.0, 1.0};
    EXPECT_THROW(synthesize_state_prep(not_normalised),
                 quorum::util::contract_error);
    const std::vector<double> negative{-0.6, 0.8};
    EXPECT_THROW(synthesize_state_prep(negative),
                 quorum::util::contract_error);
}

TEST(Transpile, ExpandInitializeMatchesDirectInit) {
    quorum::util::rng gen(83);
    std::vector<double> amps(8);
    double norm = 0.0;
    for (double& a : amps) {
        a = gen.uniform();
        norm += a * a;
    }
    for (double& a : amps) {
        a /= std::sqrt(norm);
    }
    circuit c(3);
    const qubit_t reg[] = {0, 1, 2};
    c.initialize(reg, std::span<const double>(amps));
    c.h(0);
    const circuit expanded = expand_initialize(c);
    EXPECT_TRUE(is_basis_circuit(decompose_to_basis(c)));

    statevector direct(3);
    direct.initialize_register(reg, std::vector<amp>(amps.begin(), amps.end()));
    const qubit_t q0[] = {0};
    direct.apply_gate(gate_kind::h, q0);

    statevector synthesised(3);
    for (const auto& op : expanded.ops()) {
        synthesised.apply_gate(op.gate, op.qubits, op.params);
    }
    for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_NEAR(std::abs(direct.amplitudes()[j] -
                             synthesised.amplitudes()[j]),
                    0.0, 1e-9);
    }
}

TEST(Transpile, ResetAndMeasurePassThrough) {
    circuit c(2, 1);
    c.h(0).reset(0).measure(1, 0);
    const circuit lowered = decompose_to_basis(c);
    std::size_t resets = 0;
    std::size_t measures = 0;
    for (const auto& op : lowered.ops()) {
        resets += op.kind == op_kind::reset ? 1 : 0;
        measures += op.kind == op_kind::measure ? 1 : 0;
    }
    EXPECT_EQ(resets, 1u);
    EXPECT_EQ(measures, 1u);
}

TEST(Transpile, LoweredSwapTestGateBudget) {
    // The paper's 7-qubit circuit must stay within a sane basis-gate count
    // after lowering (transpiler sanity / cost model guard).
    circuit c(7, 1);
    c.h(6);
    c.cswap(6, 0, 3);
    c.cswap(6, 1, 4);
    c.cswap(6, 2, 5);
    c.h(6);
    c.measure(6, 0);
    const circuit lowered = transpile_for_hardware(c);
    EXPECT_TRUE(is_basis_circuit(lowered));
    EXPECT_GE(lowered.gate_count_arity(2), 24u); // 8 CX per Fredkin
    EXPECT_LE(lowered.gate_count(), 120u);
}

} // namespace
