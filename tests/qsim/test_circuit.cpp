#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qsim/circuit.h"
#include "qsim/statevector_runner.h"
#include "util/rng.h"

namespace {

using namespace quorum::qsim;
namespace util = quorum::util;

TEST(Circuit, BuilderRecordsOps) {
    circuit c(3, 1);
    c.h(0).cx(0, 1).rx(0.5, 2).barrier().reset(1).measure(2, 0);
    ASSERT_EQ(c.ops().size(), 6u);
    EXPECT_EQ(c.ops()[0].kind, op_kind::gate);
    EXPECT_EQ(c.ops()[0].gate, gate_kind::h);
    EXPECT_EQ(c.ops()[3].kind, op_kind::barrier);
    EXPECT_EQ(c.ops()[4].kind, op_kind::reset);
    EXPECT_EQ(c.ops()[5].kind, op_kind::measure);
    EXPECT_EQ(c.ops()[5].cbit, 0);
}

TEST(Circuit, RejectsOutOfRangeQubits) {
    circuit c(2);
    EXPECT_THROW(c.h(2), quorum::util::contract_error);
    EXPECT_THROW(c.cx(0, 5), quorum::util::contract_error);
}

TEST(Circuit, RejectsDuplicateOperands) {
    circuit c(3);
    EXPECT_THROW(c.cx(1, 1), quorum::util::contract_error);
    EXPECT_THROW(c.cswap(0, 1, 1), quorum::util::contract_error);
}

TEST(Circuit, RejectsBadClassicalBit) {
    circuit c(2, 1);
    EXPECT_THROW(c.measure(0, 1), quorum::util::contract_error);
    EXPECT_THROW(c.measure(0, -1), quorum::util::contract_error);
}

TEST(Circuit, RejectsUnnormalisedInitialize) {
    circuit c(2);
    const qubit_t reg[] = {0, 1};
    const std::vector<double> bad{0.5, 0.5, 0.5, 0.4};
    EXPECT_THROW(c.initialize(reg, std::span<const double>(bad)),
                 quorum::util::contract_error);
}

TEST(Circuit, RejectsWrongInitializeSize) {
    circuit c(2);
    const qubit_t reg[] = {0, 1};
    const std::vector<double> wrong{1.0, 0.0};
    EXPECT_THROW(c.initialize(reg, std::span<const double>(wrong)),
                 quorum::util::contract_error);
}

TEST(Circuit, GateCounts) {
    circuit c(3);
    c.h(0).h(1).cx(0, 1).cswap(0, 1, 2).rz(0.3, 0);
    EXPECT_EQ(c.gate_count(), 5u);
    EXPECT_EQ(c.gate_count_arity(1), 3u);
    EXPECT_EQ(c.gate_count_arity(2), 1u);
    EXPECT_EQ(c.gate_count_arity(3), 1u);
    EXPECT_EQ(c.count_kind(gate_kind::h), 2u);
    EXPECT_EQ(c.count_kind(gate_kind::cx), 1u);
}

TEST(Circuit, DepthSerialVsParallel) {
    circuit serial(2);
    serial.h(0).h(0).h(0);
    EXPECT_EQ(serial.depth(), 3u);

    circuit parallel_ops(3);
    parallel_ops.h(0).h(1).h(2);
    EXPECT_EQ(parallel_ops.depth(), 1u);

    circuit mixed(2);
    mixed.h(0).cx(0, 1).h(1);
    EXPECT_EQ(mixed.depth(), 3u);
}

TEST(Circuit, BarrierAlignsDepth) {
    circuit c(2);
    c.h(0).barrier().h(1);
    // The barrier forces q1's gate to start after q0's layer.
    EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, AppendMapsQubits) {
    circuit inner(2);
    inner.h(0).cx(0, 1);
    circuit outer(4);
    const qubit_t map[] = {2, 3};
    outer.append(inner, map);
    ASSERT_EQ(outer.ops().size(), 2u);
    EXPECT_EQ(outer.ops()[0].qubits[0], 2u);
    EXPECT_EQ(outer.ops()[1].qubits[0], 2u);
    EXPECT_EQ(outer.ops()[1].qubits[1], 3u);
}

TEST(Circuit, AppendRejectsBadMap) {
    circuit inner(2);
    inner.h(0);
    circuit outer(3);
    const qubit_t short_map[] = {0};
    EXPECT_THROW(outer.append(inner, short_map),
                 quorum::util::contract_error);
    const qubit_t bad_map[] = {0, 9};
    EXPECT_THROW(outer.append(inner, bad_map), quorum::util::contract_error);
}

TEST(Circuit, InverseUndoesCircuit) {
    quorum::util::rng gen(13);
    for (int trial = 0; trial < 10; ++trial) {
        circuit c(3);
        c.rx(gen.angle(), 0).rz(gen.angle(), 1).cx(0, 1).ry(gen.angle(), 2)
            .cx(1, 2).s(0).t(1);
        circuit inv = c.inverse();
        const qubit_t identity_map[] = {0, 1, 2};
        circuit both(3);
        both.append(c, identity_map);
        both.append(inv, identity_map);
        const util::cmatrix u = circuit_unitary(both);
        EXPECT_TRUE(u.equals_up_to_phase(util::cmatrix::identity(8), 1e-9));
    }
}

TEST(Circuit, InverseRejectsNonUnitaryOps) {
    circuit c(2, 1);
    c.h(0).reset(1);
    EXPECT_THROW(c.inverse(), quorum::util::contract_error);
    circuit m(2, 1);
    m.measure(0, 0);
    EXPECT_THROW(m.inverse(), quorum::util::contract_error);
}

TEST(Circuit, InverseRejectsSx) {
    circuit c(1);
    c.sx(0);
    EXPECT_THROW(c.inverse(), quorum::util::contract_error);
}

TEST(Circuit, ToStringListsOps) {
    circuit c(2, 1);
    c.h(0).cx(0, 1).measure(1, 0);
    const std::string text = c.to_string();
    EXPECT_NE(text.find("h"), std::string::npos);
    EXPECT_NE(text.find("cx"), std::string::npos);
    EXPECT_NE(text.find("measure"), std::string::npos);
}

TEST(Circuit, UnitaryOfBellPreparation) {
    circuit c(2);
    c.h(0).cx(0, 1);
    const util::cmatrix u = circuit_unitary(c);
    // Column 0 = Bell state (|00> + |11>)/sqrt(2).
    EXPECT_NEAR(std::abs(u(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(u(3, 0)), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(u(1, 0)), 0.0, 1e-12);
}

TEST(Circuit, UnitaryRejectsNonUnitaryOps) {
    circuit c(2, 1);
    c.h(0).measure(0, 0);
    EXPECT_THROW(circuit_unitary(c), quorum::util::contract_error);
}

TEST(Circuit, ZeroQubitCircuitRejected) {
    EXPECT_THROW(circuit(0), quorum::util::contract_error);
}

} // namespace
