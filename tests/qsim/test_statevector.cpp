#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qsim/statevector.h"
#include "util/rng.h"

namespace {

using namespace quorum::qsim;
using quorum::util::cmatrix;
using cd = std::complex<double>;

statevector random_state(std::size_t n, quorum::util::rng& gen) {
    statevector state(n);
    for (std::size_t q = 0; q < n; ++q) {
        const qubit_t operand[] = {static_cast<qubit_t>(q)};
        const double theta[] = {gen.angle()};
        state.apply_gate(gate_kind::ry, operand, theta);
        const double phi[] = {gen.angle()};
        state.apply_gate(gate_kind::rz, operand, phi);
    }
    for (std::size_t q = 0; q + 1 < n; ++q) {
        const qubit_t operands[] = {static_cast<qubit_t>(q),
                                    static_cast<qubit_t>(q + 1)};
        state.apply_gate(gate_kind::cx, operands);
    }
    return state;
}

TEST(Statevector, StartsInGroundState) {
    statevector state(3);
    EXPECT_EQ(state.dim(), 8u);
    EXPECT_EQ(state.amplitudes()[0], cd(1.0));
    for (std::size_t i = 1; i < 8; ++i) {
        EXPECT_EQ(state.amplitudes()[i], cd(0.0));
    }
}

TEST(Statevector, BasisStateConstruction) {
    const statevector state = statevector::basis_state(3, 5);
    EXPECT_EQ(state.amplitudes()[5], cd(1.0));
    EXPECT_DOUBLE_EQ(state.norm_squared(), 1.0);
}

TEST(Statevector, FromAmplitudesValidates) {
    EXPECT_THROW((statevector::from_amplitudes({cd(1.0), cd(0.0), cd(0.0)})),
                 quorum::util::contract_error);
    EXPECT_THROW((statevector::from_amplitudes({cd(1.0), cd(1.0)})),
                 quorum::util::contract_error);
    const statevector ok =
        statevector::from_amplitudes({cd(std::sqrt(0.5)), cd(std::sqrt(0.5))});
    EXPECT_EQ(ok.num_qubits(), 1u);
}

TEST(Statevector, HadamardCreatesSuperposition) {
    statevector state(1);
    const qubit_t q0[] = {0};
    state.apply_gate(gate_kind::h, q0);
    EXPECT_NEAR(state.probability_one(0), 0.5, 1e-12);
}

TEST(Statevector, XFlipsQubit) {
    statevector state(2);
    const qubit_t q1[] = {1};
    state.apply_gate(gate_kind::x, q1);
    EXPECT_EQ(state.amplitudes()[2], cd(1.0)); // |10> little-endian
    EXPECT_NEAR(state.probability_one(1), 1.0, 1e-12);
    EXPECT_NEAR(state.probability_one(0), 0.0, 1e-12);
}

TEST(Statevector, BellStateViaHCx) {
    statevector state(2);
    const qubit_t q0[] = {0};
    state.apply_gate(gate_kind::h, q0);
    const qubit_t cx01[] = {0, 1};
    state.apply_gate(gate_kind::cx, cx01);
    EXPECT_NEAR(std::norm(state.amplitudes()[0]), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(state.amplitudes()[3]), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(state.amplitudes()[1]), 0.0, 1e-12);
    EXPECT_NEAR(std::norm(state.amplitudes()[2]), 0.0, 1e-12);
}

TEST(Statevector, GateKernelsMatchGenericMatrixPath) {
    quorum::util::rng gen(21);
    for (int trial = 0; trial < 30; ++trial) {
        statevector fast = random_state(4, gen);
        statevector slow = fast;
        const auto q = static_cast<qubit_t>(gen.uniform_index(4));
        const auto q2 =
            static_cast<qubit_t>((q + 1 + gen.uniform_index(3)) % 4);
        const int pick = static_cast<int>(gen.uniform_index(3));
        if (pick == 0) {
            const qubit_t operand[] = {q};
            fast.apply_gate(gate_kind::x, operand);
            slow.apply_matrix(gate_matrix(gate_kind::x), operand);
        } else if (pick == 1) {
            const qubit_t operands[] = {q, q2};
            fast.apply_gate(gate_kind::cx, operands);
            slow.apply_matrix(gate_matrix(gate_kind::cx), operands);
        } else {
            const qubit_t operand[] = {q};
            const double theta[] = {gen.angle()};
            fast.apply_gate(gate_kind::ry, operand, theta);
            slow.apply_matrix(gate_matrix(gate_kind::ry, theta), operand);
        }
        for (std::size_t i = 0; i < fast.dim(); ++i) {
            EXPECT_NEAR(std::abs(fast.amplitudes()[i] - slow.amplitudes()[i]),
                        0.0, 1e-12);
        }
    }
}

TEST(Statevector, ThreeQubitGateOnNonAdjacentQubits) {
    quorum::util::rng gen(23);
    statevector state = random_state(4, gen);
    statevector reference = state;
    // cswap on qubits (3, 0, 2): generic path.
    const qubit_t operands[] = {3, 0, 2};
    state.apply_gate(gate_kind::cswap, operands);
    reference.apply_matrix(gate_matrix(gate_kind::cswap), operands);
    for (std::size_t i = 0; i < state.dim(); ++i) {
        EXPECT_NEAR(std::abs(state.amplitudes()[i] - reference.amplitudes()[i]),
                    0.0, 1e-12);
    }
}

TEST(Statevector, UnitaryPreservesNorm) {
    quorum::util::rng gen(25);
    statevector state = random_state(5, gen);
    EXPECT_NEAR(state.norm_squared(), 1.0, 1e-10);
}

TEST(Statevector, CollapseZeroOutcome) {
    statevector state(1);
    const qubit_t q0[] = {0};
    state.apply_gate(gate_kind::h, q0);
    state.collapse(0, false);
    EXPECT_NEAR(std::norm(state.amplitudes()[0]), 1.0, 1e-12);
    EXPECT_NEAR(state.probability_one(0), 0.0, 1e-12);
}

TEST(Statevector, CollapseImpossibleOutcomeThrows) {
    statevector state(1); // |0>
    EXPECT_THROW(state.collapse(0, true), quorum::util::contract_error);
}

TEST(Statevector, CollapseRenormalises) {
    quorum::util::rng gen(27);
    statevector state = random_state(3, gen);
    const double p1 = state.probability_one(1);
    if (p1 > 1e-6) {
        state.collapse(1, true);
        EXPECT_NEAR(state.norm_squared(), 1.0, 1e-10);
        EXPECT_NEAR(state.probability_one(1), 1.0, 1e-12);
    }
}

TEST(Statevector, MeasureCollapseMatchesProbability) {
    quorum::util::rng gen(29);
    int ones = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        statevector state(1);
        const qubit_t q0[] = {0};
        const double theta[] = {2.0 * std::acos(std::sqrt(0.3))};
        state.apply_gate(gate_kind::ry, q0, theta);
        // P(1) = sin^2(theta/2) = 0.7.
        ones += state.measure_collapse(0, gen) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(ones) / trials, 0.7, 0.03);
}

TEST(Statevector, InnerProductOfOrthogonalStates) {
    const statevector a = statevector::basis_state(2, 0);
    const statevector b = statevector::basis_state(2, 3);
    EXPECT_NEAR(std::abs(a.inner_product(b)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(a.inner_product(a)), 1.0, 1e-12);
}

TEST(Statevector, InnerProductConjugateSymmetry) {
    quorum::util::rng gen(31);
    const statevector a = random_state(3, gen);
    const statevector b = random_state(3, gen);
    const cd ab = a.inner_product(b);
    const cd ba = b.inner_product(a);
    EXPECT_NEAR(std::abs(ab - std::conj(ba)), 0.0, 1e-12);
}

TEST(Statevector, ProbabilitiesSumToOne) {
    quorum::util::rng gen(33);
    const statevector state = random_state(4, gen);
    double total = 0.0;
    for (const double p : state.probabilities()) {
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Statevector, SampleFollowsDistribution) {
    quorum::util::rng gen(35);
    statevector state(2);
    const qubit_t q0[] = {0};
    state.apply_gate(gate_kind::h, q0);
    std::map<std::size_t, int> counts;
    for (int t = 0; t < 8000; ++t) {
        ++counts[state.sample(gen)];
    }
    EXPECT_NEAR(counts[0] / 8000.0, 0.5, 0.03);
    EXPECT_NEAR(counts[1] / 8000.0, 0.5, 0.03);
    EXPECT_EQ(counts.count(2), 0u);
    EXPECT_EQ(counts.count(3), 0u);
}

TEST(Statevector, InitializeRegisterBuildsProductState) {
    statevector state(3);
    const qubit_t reg[] = {0, 1};
    const double r = std::sqrt(0.5);
    const std::vector<amp> sub{cd(r), cd(0.0), cd(0.0), cd(r)};
    state.initialize_register(reg, sub);
    EXPECT_NEAR(std::norm(state.amplitudes()[0]), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(state.amplitudes()[3]), 0.5, 1e-12);
    EXPECT_NEAR(state.norm_squared(), 1.0, 1e-12);
}

TEST(Statevector, InitializeRegisterOnNonZeroTargetThrows) {
    statevector state(2);
    const qubit_t q0[] = {0};
    state.apply_gate(gate_kind::h, q0);
    const std::vector<amp> sub{cd(1.0), cd(0.0)};
    const qubit_t reg[] = {0};
    EXPECT_THROW(state.initialize_register(reg, sub),
                 quorum::util::contract_error);
}

TEST(Statevector, InitializeSecondRegisterKeepsFirst) {
    statevector state(2);
    const qubit_t reg0[] = {0};
    const double r = std::sqrt(0.5);
    const std::vector<amp> plus{cd(r), cd(r)};
    state.initialize_register(reg0, plus);
    const qubit_t reg1[] = {1};
    state.initialize_register(reg1, plus);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(std::norm(state.amplitudes()[i]), 0.25, 1e-12);
    }
}

TEST(Statevector, QubitIndexOutOfRangeThrows) {
    statevector state(2);
    const qubit_t bad[] = {2};
    EXPECT_THROW(state.apply_gate(gate_kind::x, bad),
                 quorum::util::contract_error);
    EXPECT_THROW((void)state.probability_one(5), quorum::util::contract_error);
}

class StatevectorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StatevectorSizeSweep, RandomCircuitPreservesNorm) {
    quorum::util::rng gen(GetParam() * 101 + 7);
    const statevector state = random_state(GetParam(), gen);
    EXPECT_NEAR(state.norm_squared(), 1.0, 1e-9);
    EXPECT_EQ(state.dim(), std::size_t{1} << GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatevectorSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

} // namespace
