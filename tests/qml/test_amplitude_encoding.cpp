#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qml/amplitude_encoding.h"
#include "qsim/statevector.h"
#include "util/rng.h"

namespace {

using namespace quorum::qml;
using quorum::qsim::statevector;

TEST(AmplitudeEncoding, CapacityConstants) {
    EXPECT_EQ(max_features(3), 7u);
    EXPECT_EQ(overflow_index(3), 7u);
    EXPECT_EQ(max_features(4), 15u);
}

TEST(AmplitudeEncoding, FeaturesBecomeAmplitudes) {
    const std::vector<double> features{0.1, 0.2, 0.3};
    const std::vector<double> amps = to_amplitudes(features, 3);
    ASSERT_EQ(amps.size(), 8u);
    EXPECT_NEAR(amps[0], 0.1, 1e-9);
    EXPECT_NEAR(amps[1], 0.2, 1e-9);
    EXPECT_NEAR(amps[2], 0.3, 1e-9);
    EXPECT_NEAR(amps[3], 0.0, 1e-12);
}

TEST(AmplitudeEncoding, OverflowAbsorbsResidualMass) {
    const std::vector<double> features{0.3, 0.4};
    const std::vector<double> amps = to_amplitudes(features, 2);
    // overflow^2 = 1 - 0.09 - 0.16 = 0.75.
    EXPECT_NEAR(amps[3] * amps[3], 0.75, 1e-9);
    double norm = 0.0;
    for (const double a : amps) {
        norm += a * a;
    }
    EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(AmplitudeEncoding, EmptyFeatureListIsPureOverflow) {
    const std::vector<double> amps = to_amplitudes({}, 2);
    EXPECT_NEAR(amps[3], 1.0, 1e-12);
}

TEST(AmplitudeEncoding, PaperNormalisationAlwaysFits) {
    // Features normalised to [0, 1/M] (paper §IV-A) can never exceed unit
    // probability mass, for any M and any subset size <= 2^n - 1.
    quorum::util::rng gen(3);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t m = 1 + gen.uniform_index(30);
        std::vector<double> features(std::min<std::size_t>(7, m));
        for (double& f : features) {
            f = gen.uniform() / static_cast<double>(m);
        }
        EXPECT_NO_THROW(to_amplitudes(features, 3));
    }
}

TEST(AmplitudeEncoding, RejectsTooManyFeatures) {
    const std::vector<double> features(8, 0.1);
    EXPECT_THROW(to_amplitudes(features, 3), quorum::util::contract_error);
}

TEST(AmplitudeEncoding, RejectsNegativeFeatures) {
    const std::vector<double> features{0.2, -0.3};
    EXPECT_THROW(to_amplitudes(features, 2), quorum::util::contract_error);
}

TEST(AmplitudeEncoding, RejectsOverUnitMass) {
    const std::vector<double> features{0.8, 0.8}; // 0.64 + 0.64 > 1
    EXPECT_THROW(to_amplitudes(features, 2), quorum::util::contract_error);
}

TEST(AmplitudeEncoding, EncodeStateMatchesAmplitudes) {
    const std::vector<double> features{0.25, 0.1, 0.05};
    const statevector state = encode_state(features, 3);
    const std::vector<double> amps = to_amplitudes(features, 3);
    for (std::size_t j = 0; j < amps.size(); ++j) {
        EXPECT_NEAR(state.amplitudes()[j].real(), amps[j], 1e-12);
    }
    EXPECT_NEAR(state.norm_squared(), 1.0, 1e-12);
}

class EncodingCircuitSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EncodingCircuitSweep, SynthesisedCircuitMatchesExactState) {
    const std::size_t n = GetParam();
    quorum::util::rng gen(n * 7 + 1);
    for (int trial = 0; trial < 5; ++trial) {
        const std::size_t m = 1 + gen.uniform_index(max_features(n));
        std::vector<double> features(m);
        for (double& f : features) {
            f = gen.uniform() * 0.4; // keep total mass under 1
        }
        const statevector exact = encode_state(features, n);
        const quorum::qsim::circuit prep = encoding_circuit(features, n);
        statevector synthesised(n);
        for (const auto& op : prep.ops()) {
            synthesised.apply_gate(op.gate, op.qubits, op.params);
        }
        for (std::size_t j = 0; j < exact.dim(); ++j) {
            EXPECT_NEAR(std::abs(exact.amplitudes()[j] -
                                 synthesised.amplitudes()[j]),
                        0.0, 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EncodingCircuitSweep,
                         ::testing::Values(2u, 3u, 4u));

} // namespace
