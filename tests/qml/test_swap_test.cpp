#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qml/swap_test.h"
#include "qsim/statevector_runner.h"
#include "util/rng.h"

namespace {

using namespace quorum::qml;
using namespace quorum::qsim;

statevector random_state(std::size_t n, quorum::util::rng& gen) {
    statevector state(n);
    for (std::size_t q = 0; q < n; ++q) {
        const qubit_t operand[] = {static_cast<qubit_t>(q)};
        const double theta[] = {gen.angle()};
        state.apply_gate(gate_kind::ry, operand, theta);
        const double phi[] = {gen.angle()};
        state.apply_gate(gate_kind::rz, operand, phi);
    }
    return state;
}

TEST(SwapTest, OverlapProbabilityRelation) {
    EXPECT_DOUBLE_EQ(swap_test_p1_from_overlap(1.0), 0.0);
    EXPECT_DOUBLE_EQ(swap_test_p1_from_overlap(0.0), 0.5);
    EXPECT_DOUBLE_EQ(overlap_from_swap_test_p1(0.0), 1.0);
    EXPECT_DOUBLE_EQ(overlap_from_swap_test_p1(0.5), 0.0);
    EXPECT_NEAR(overlap_from_swap_test_p1(swap_test_p1_from_overlap(0.37)),
                0.37, 1e-12);
}

TEST(SwapTest, IdenticalStatesGiveZeroP1) {
    quorum::util::rng gen(5);
    const statevector psi = random_state(2, gen);
    EXPECT_NEAR(swap_test_p1(psi, psi), 0.0, 1e-12);
}

TEST(SwapTest, OrthogonalStatesGiveHalf) {
    const statevector a = statevector::basis_state(2, 1);
    const statevector b = statevector::basis_state(2, 2);
    EXPECT_NEAR(swap_test_p1(a, b), 0.5, 1e-12);
}

TEST(SwapTest, CircuitMatchesAnalyticForRandomStates) {
    quorum::util::rng gen(7);
    for (int trial = 0; trial < 10; ++trial) {
        // Prepare two random single-qubit states on a 3-qubit circuit.
        const double theta_a = gen.angle();
        const double theta_b = gen.angle();
        circuit c(3, 1);
        c.ry(theta_a, 0);
        c.ry(theta_b, 1);
        const qubit_t reg_a[] = {0};
        const qubit_t reg_b[] = {1};
        append_swap_test(c, reg_a, reg_b, 2, 0);
        const double p_circuit =
            statevector_runner::run_exact(c).cbit_probability_one(0);

        statevector a(1);
        const qubit_t q0[] = {0};
        const double pa[] = {theta_a};
        a.apply_gate(gate_kind::ry, q0, pa);
        statevector b(1);
        const double pb[] = {theta_b};
        b.apply_gate(gate_kind::ry, q0, pb);
        EXPECT_NEAR(p_circuit, swap_test_p1(a, b), 1e-10);
    }
}

TEST(SwapTest, MultiQubitRegisters) {
    quorum::util::rng gen(11);
    // |psi> on reg A (2 qubits), same |psi> on reg B: p1 must vanish.
    circuit c(5, 1);
    const double t0 = gen.angle();
    const double t1 = gen.angle();
    c.ry(t0, 0).ry(t1, 1).cx(0, 1);
    c.ry(t0, 2).ry(t1, 3).cx(2, 3);
    const qubit_t reg_a[] = {0, 1};
    const qubit_t reg_b[] = {2, 3};
    append_swap_test(c, reg_a, reg_b, 4, 0);
    EXPECT_NEAR(statevector_runner::run_exact(c).cbit_probability_one(0), 0.0,
                1e-10);
}

TEST(SwapTest, MismatchedRegistersThrow) {
    circuit c(4, 1);
    const qubit_t reg_a[] = {0, 1};
    const qubit_t reg_b[] = {2};
    EXPECT_THROW(append_swap_test(c, reg_a, reg_b, 3, 0),
                 quorum::util::contract_error);
}

TEST(SwapTest, NegativeCbitSkipsMeasurement) {
    circuit c(3, 0);
    const qubit_t reg_a[] = {0};
    const qubit_t reg_b[] = {1};
    append_swap_test(c, reg_a, reg_b, 2, -1);
    for (const auto& op : c.ops()) {
        EXPECT_NE(op.kind, op_kind::measure);
    }
}

TEST(SwapTest, P1NeverExceedsHalf) {
    quorum::util::rng gen(13);
    for (int trial = 0; trial < 20; ++trial) {
        const statevector a = random_state(3, gen);
        const statevector b = random_state(3, gen);
        const double p1 = swap_test_p1(a, b);
        EXPECT_GE(p1, 0.0);
        EXPECT_LE(p1, 0.5);
    }
}

} // namespace
