#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qml/ansatz.h"
#include "qsim/circuit.h"
#include "util/rng.h"

namespace {

using namespace quorum::qml;
using namespace quorum::qsim;

TEST(Ansatz, RandomParamsShapeAndRange) {
    quorum::util::rng gen(3);
    const ansatz_params params = random_ansatz_params(3, 2, gen);
    EXPECT_EQ(params.n_qubits, 3u);
    EXPECT_EQ(params.layers, 2u);
    EXPECT_EQ(params.rx_angles.size(), 6u);
    EXPECT_EQ(params.rz_angles.size(), 6u);
    EXPECT_EQ(params.size(), 12u);
    for (const double theta : params.rx_angles) {
        EXPECT_GE(theta, 0.0);
        EXPECT_LT(theta, 2.0 * 3.14159265358979323846);
    }
}

TEST(Ansatz, DeterministicForFixedSeed) {
    quorum::util::rng a(42);
    quorum::util::rng b(42);
    const ansatz_params pa = random_ansatz_params(3, 2, a);
    const ansatz_params pb = random_ansatz_params(3, 2, b);
    EXPECT_EQ(pa.rx_angles, pb.rx_angles);
    EXPECT_EQ(pa.rz_angles, pb.rz_angles);
}

TEST(Ansatz, EncoderStructureMatchesFig5) {
    quorum::util::rng gen(5);
    const ansatz_params params = random_ansatz_params(3, 2, gen);
    circuit c(3);
    const qubit_t reg[] = {0, 1, 2};
    append_encoder(c, params, reg);
    // Per layer: 3 rx + 3 rz + 2 cx = 8 gates; 2 layers = 16.
    EXPECT_EQ(c.gate_count(), 16u);
    EXPECT_EQ(c.count_kind(gate_kind::rx), 6u);
    EXPECT_EQ(c.count_kind(gate_kind::rz), 6u);
    EXPECT_EQ(c.count_kind(gate_kind::cx), 4u);
}

TEST(Ansatz, DecoderInvertsEncoder) {
    quorum::util::rng gen(7);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 2 + gen.uniform_index(3); // 2..4 qubits
        const std::size_t layers = 1 + gen.uniform_index(3);
        const ansatz_params params =
            random_ansatz_params(n, layers, gen);
        circuit c(n);
        std::vector<qubit_t> reg(n);
        for (std::size_t q = 0; q < n; ++q) {
            reg[q] = static_cast<qubit_t>(q);
        }
        append_encoder(c, params, reg);
        append_decoder(c, params, reg);
        const quorum::util::cmatrix u = circuit_unitary(c);
        EXPECT_TRUE(u.equals_up_to_phase(
            quorum::util::cmatrix::identity(std::size_t{1} << n), 1e-9));
    }
}

TEST(Ansatz, EncoderOnMappedRegister) {
    quorum::util::rng gen(9);
    const ansatz_params params = random_ansatz_params(2, 1, gen);
    circuit c(5);
    const qubit_t reg[] = {3, 4};
    append_encoder(c, params, reg);
    for (const auto& op : c.ops()) {
        for (const qubit_t q : op.qubits) {
            EXPECT_GE(q, 3u);
        }
    }
}

TEST(Ansatz, SingleQubitAnsatzHasNoCx) {
    quorum::util::rng gen(11);
    const ansatz_params params = random_ansatz_params(1, 2, gen);
    circuit c(1);
    const qubit_t reg[] = {0};
    append_encoder(c, params, reg);
    EXPECT_EQ(c.count_kind(gate_kind::cx), 0u);
    EXPECT_EQ(c.gate_count(), 4u); // 2 layers x (rx + rz)
}

TEST(Ansatz, RegisterSizeMismatchThrows) {
    quorum::util::rng gen(13);
    const ansatz_params params = random_ansatz_params(3, 1, gen);
    circuit c(3);
    const qubit_t reg[] = {0, 1};
    EXPECT_THROW(append_encoder(c, params, reg),
                 quorum::util::contract_error);
    EXPECT_THROW(append_decoder(c, params, reg),
                 quorum::util::contract_error);
}

TEST(Ansatz, InvalidConstructionRejected) {
    quorum::util::rng gen(15);
    EXPECT_THROW(random_ansatz_params(0, 1, gen),
                 quorum::util::contract_error);
    EXPECT_THROW(random_ansatz_params(3, 0, gen),
                 quorum::util::contract_error);
}

class AnsatzLayerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AnsatzLayerSweep, InverseHoldsForAllDepths) {
    quorum::util::rng gen(GetParam() * 17 + 1);
    const ansatz_params params = random_ansatz_params(3, GetParam(), gen);
    circuit c(3);
    const qubit_t reg[] = {0, 1, 2};
    append_encoder(c, params, reg);
    append_decoder(c, params, reg);
    EXPECT_TRUE(circuit_unitary(c).equals_up_to_phase(
        quorum::util::cmatrix::identity(8), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Depths, AnsatzLayerSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u));

} // namespace
