#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qml/observables.h"
#include "qml/parameter_shift.h"
#include "qsim/statevector.h"
#include "util/rng.h"

namespace {

using namespace quorum::qml;
using namespace quorum::qsim;

/// <Z_0> of a small parameterised circuit: ry(p0) rz(p1) on q0,
/// ry(p2) on q1, cx(0,1).
double toy_expectation(std::span<const double> params) {
    statevector state(2);
    const qubit_t q0[] = {0};
    const qubit_t q1[] = {1};
    const double p0[] = {params[0]};
    state.apply_gate(gate_kind::ry, q0, p0);
    const double p1[] = {params[1]};
    state.apply_gate(gate_kind::rz, q0, p1);
    const double p2[] = {params[2]};
    state.apply_gate(gate_kind::ry, q1, p2);
    const qubit_t cx01[] = {0, 1};
    state.apply_gate(gate_kind::cx, cx01);
    return z_expectation(state, 0);
}

TEST(ParameterShift, MatchesFiniteDifference) {
    quorum::util::rng gen(3);
    for (int trial = 0; trial < 10; ++trial) {
        const std::vector<double> params{gen.angle(), gen.angle(), gen.angle()};
        const std::vector<double> ps =
            parameter_shift_gradient(toy_expectation, params);
        const std::vector<double> fd =
            finite_difference_gradient(toy_expectation, params);
        ASSERT_EQ(ps.size(), 3u);
        for (std::size_t i = 0; i < 3; ++i) {
            EXPECT_NEAR(ps[i], fd[i], 1e-5);
        }
    }
}

TEST(ParameterShift, AnalyticSingleQubitCase) {
    // <Z> after ry(theta) is cos(theta); gradient is -sin(theta).
    const auto evaluate = [](std::span<const double> p) {
        statevector state(1);
        const qubit_t q0[] = {0};
        const double theta[] = {p[0]};
        state.apply_gate(gate_kind::ry, q0, theta);
        return z_expectation(state, 0);
    };
    for (const double theta : {0.0, 0.5, 1.0, 2.0, 3.0}) {
        const std::vector<double> params{theta};
        const std::vector<double> grad =
            parameter_shift_gradient(evaluate, params);
        EXPECT_NEAR(grad[0], -std::sin(theta), 1e-10);
    }
}

TEST(ParameterShift, DoesNotMutateParams) {
    const std::vector<double> params{0.3, 0.7, 1.1};
    const std::vector<double> copy = params;
    (void)parameter_shift_gradient(toy_expectation, params);
    EXPECT_EQ(params, copy);
}

TEST(ParameterShift, ZeroShiftRejected) {
    const std::vector<double> params{0.1};
    EXPECT_THROW(
        parameter_shift_gradient(toy_expectation, params, 0.0),
        quorum::util::contract_error);
}

TEST(FiniteDifference, StepMustBePositive) {
    const std::vector<double> params{0.1, 0.2, 0.3};
    EXPECT_THROW(finite_difference_gradient(toy_expectation, params, 0.0),
                 quorum::util::contract_error);
}

TEST(Observables, ZExpectationBounds) {
    statevector state(1);
    EXPECT_NEAR(z_expectation(state, 0), 1.0, 1e-12); // |0>
    const qubit_t q0[] = {0};
    state.apply_gate(gate_kind::x, q0);
    EXPECT_NEAR(z_expectation(state, 0), -1.0, 1e-12); // |1>
    state.apply_gate(gate_kind::h, q0);
    EXPECT_NEAR(z_expectation(state, 0), 0.0, 1e-10); // |->
}

TEST(Observables, ZToProbabilityMapping) {
    EXPECT_DOUBLE_EQ(z_to_probability(1.0), 0.0);
    EXPECT_DOUBLE_EQ(z_to_probability(-1.0), 1.0);
    EXPECT_DOUBLE_EQ(z_to_probability(0.0), 0.5);
}

} // namespace
