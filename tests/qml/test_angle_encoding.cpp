#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qml/angle_encoding.h"
#include "qsim/statevector_runner.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;
using namespace quorum::qml;

TEST(AngleEncoding, NamesAndStrictParsing) {
    EXPECT_EQ(encoding_name(encoding::amplitude), "amplitude");
    EXPECT_EQ(encoding_name(encoding::angle), "angle");

    encoding parsed = encoding::amplitude;
    EXPECT_TRUE(parse_encoding("angle", parsed));
    EXPECT_EQ(parsed, encoding::angle);
    EXPECT_TRUE(parse_encoding("amplitude", parsed));
    EXPECT_EQ(parsed, encoding::amplitude);

    // Strict: no case folding, no prefixes, no surrounding junk — and a
    // failed parse leaves the output untouched.
    parsed = encoding::angle;
    for (const char* bad :
         {"", "Angle", "AMPLITUDE", "amp", "angle ", " angle", "angle2"}) {
        EXPECT_FALSE(parse_encoding(bad, parsed)) << "accepted: " << bad;
        EXPECT_EQ(parsed, encoding::angle) << "clobbered by: " << bad;
    }
}

TEST(AngleEncoding, EncodedFeatureCountPerEncoding) {
    EXPECT_EQ(encoded_feature_count(encoding::amplitude, 3), 7u);
    EXPECT_EQ(encoded_feature_count(encoding::angle, 3), 3u);
    EXPECT_EQ(encoded_feature_count(encoding::amplitude, 4), 15u);
    EXPECT_EQ(encoded_feature_count(encoding::angle, 4), 4u);
}

TEST(AngleEncoding, ClosedFormMatchesProductDefinition) {
    const std::vector<double> features{0.2, 0.7, 0.45};
    const std::vector<double> amps = to_angle_amplitudes(features, 3);
    ASSERT_EQ(amps.size(), 8u);
    double norm = 0.0;
    for (std::size_t b = 0; b < amps.size(); ++b) {
        double expected = 1.0;
        for (std::size_t j = 0; j < features.size(); ++j) {
            const double half = std::numbers::pi * features[j] * 0.5;
            expected *= ((b >> j) & 1u) != 0 ? std::sin(half)
                                             : std::cos(half);
        }
        EXPECT_NEAR(amps[b], expected, 1e-15) << "basis state " << b;
        norm += amps[b] * amps[b];
    }
    EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(AngleEncoding, ClosedFormBitIdenticalToRyChainSimulation) {
    // The streaming hot path uses the closed-form fold; the gate path
    // builds RY(pi * f_j) per qubit. The two must agree to the LAST BIT
    // (including signed zeros — hence bit_cast, not EXPECT_EQ), or batch
    // and gate-level scoring would diverge.
    util::rng gen(7);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + gen.uniform_index(5);
        std::vector<double> features(n);
        for (double& f : features) {
            // Include exact endpoints: RY(0) and RY(pi) exercise the
            // signed-zero corners of the fold.
            const double u = gen.uniform();
            f = u < 0.05 ? 0.0 : (u > 0.95 ? 1.0 : gen.uniform());
        }
        const std::vector<double> closed = to_angle_amplitudes(features, n);
        const qsim::exact_run_result run = qsim::statevector_runner::run_exact(
            angle_encoding_circuit(features, n));
        ASSERT_EQ(run.branches.size(), 1u);
        const auto simulated = run.branches[0].state.amplitudes();
        ASSERT_EQ(simulated.size(), closed.size());
        for (std::size_t b = 0; b < closed.size(); ++b) {
            EXPECT_EQ(std::bit_cast<std::uint64_t>(closed[b]),
                      std::bit_cast<std::uint64_t>(simulated[b].real()))
                << "trial " << trial << " basis state " << b;
            EXPECT_EQ(simulated[b].imag(), 0.0);
        }
    }
}

TEST(AngleEncoding, RoundTripRecoversFeatures) {
    // Features come back from the encoded state's per-qubit marginals:
    // f_j = (2/pi) * atan2(sqrt(P[qubit j = 1]), sqrt(P[qubit j = 0])).
    util::rng gen(11);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 1 + gen.uniform_index(5);
        std::vector<double> features(n);
        for (double& f : features) {
            f = gen.uniform();
        }
        const std::vector<double> amps = to_angle_amplitudes(features, n);
        for (std::size_t j = 0; j < n; ++j) {
            double mass_zero = 0.0;
            double mass_one = 0.0;
            for (std::size_t b = 0; b < amps.size(); ++b) {
                const double p = amps[b] * amps[b];
                (((b >> j) & 1u) != 0 ? mass_one : mass_zero) += p;
            }
            const double recovered =
                2.0 / std::numbers::pi *
                std::atan2(std::sqrt(mass_one), std::sqrt(mass_zero));
            EXPECT_NEAR(recovered, features[j], 1e-12)
                << "trial " << trial << " feature " << j;
        }
    }
}

TEST(AngleEncoding, UnusedQubitsStayInGroundState) {
    const std::vector<double> features{0.5};
    const std::vector<double> amps = to_angle_amplitudes(features, 3);
    // Only basis states with qubits 1..2 in |0> (indices 0 and 1) carry
    // amplitude.
    for (std::size_t b = 2; b < amps.size(); ++b) {
        EXPECT_EQ(amps[b], 0.0) << "basis state " << b;
    }
    EXPECT_NEAR(amps[0] * amps[0] + amps[1] * amps[1], 1.0, 1e-12);
}

TEST(AngleEncoding, OutOfRangeFeatureNamesTheOffendingIndex) {
    const std::vector<double> features{0.2, 0.3, 1.5};
    try {
        (void)to_angle_amplitudes(features, 3);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("feature 2"), std::string::npos) << message;
        EXPECT_NE(message.find("[0, 1]"), std::string::npos) << message;
    }
    // The gate-level builder enforces the same contract.
    EXPECT_THROW((void)angle_encoding_circuit(features, 3),
                 util::contract_error);
    const std::vector<double> negative{-0.2};
    EXPECT_THROW((void)to_angle_amplitudes(negative, 1),
                 util::contract_error);
}

TEST(AngleEncoding, ShapeContractsRejectNonsense) {
    std::vector<double> out(8, 0.0);
    // Too many features for the register.
    const std::vector<double> wide{0.1, 0.2, 0.3, 0.4};
    EXPECT_THROW(encode_angle_amplitudes(wide, 3, out),
                 util::contract_error);
    // Output buffer of the wrong dimension.
    std::vector<double> small(4, 0.0);
    const std::vector<double> one{0.1};
    EXPECT_THROW(encode_angle_amplitudes(one, 3, small),
                 util::contract_error);
}

TEST(AngleEncoding, DispatchersSelectTheRightEncoder) {
    const std::vector<double> features{0.04, 0.08, 0.12};
    const std::vector<double> amp =
        to_encoded_amplitudes(encoding::amplitude, features, 3);
    const std::vector<double> ang =
        to_encoded_amplitudes(encoding::angle, features, 3);
    EXPECT_EQ(amp, to_amplitudes(features, 3));
    EXPECT_EQ(ang, to_angle_amplitudes(features, 3));

    std::vector<double> out(8, 0.0);
    encode_features(encoding::angle, features, 3, out);
    EXPECT_EQ(out, ang);
    encode_features(encoding::amplitude, features, 3, out);
    EXPECT_EQ(out, amp);
}

} // namespace
