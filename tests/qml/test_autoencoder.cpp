#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "qml/amplitude_encoding.h"
#include "qml/autoencoder.h"
#include "qsim/statevector_runner.h"
#include "util/rng.h"

namespace {

using namespace quorum::qml;
using namespace quorum::qsim;

std::vector<double> random_amplitudes(std::size_t n, quorum::util::rng& gen) {
    std::vector<double> features(max_features(n));
    for (double& f : features) {
        f = gen.uniform() * 0.3;
    }
    return to_amplitudes(features, n);
}

TEST(Autoencoder, LayoutConventions) {
    const autoencoder_layout layout{3};
    EXPECT_EQ(layout.reg_a(), (std::vector<qubit_t>{0, 1, 2}));
    EXPECT_EQ(layout.reg_b(), (std::vector<qubit_t>{3, 4, 5}));
    EXPECT_EQ(layout.ancilla(), 6u);
    EXPECT_EQ(layout.total_qubits(), 7u);
}

TEST(Autoencoder, CircuitUsesTwoNPlusOneQubits) {
    quorum::util::rng gen(3);
    const ansatz_params params = random_ansatz_params(3, 2, gen);
    const std::vector<double> amps = random_amplitudes(3, gen);
    const circuit c = build_autoencoder_circuit(amps, params, 1);
    EXPECT_EQ(c.num_qubits(), 7u); // paper: 3-qubit -> 7-qubit circuits
    EXPECT_EQ(c.num_clbits(), 1u);
    std::size_t resets = 0;
    for (const auto& op : c.ops()) {
        resets += op.kind == op_kind::reset ? 1 : 0;
    }
    EXPECT_EQ(resets, 1u);
    EXPECT_EQ(c.count_kind(gate_kind::cswap), 3u);
}

TEST(Autoencoder, CompressionCountsResets) {
    quorum::util::rng gen(5);
    const ansatz_params params = random_ansatz_params(4, 2, gen);
    std::vector<double> features(max_features(4), 0.1);
    const std::vector<double> amps = to_amplitudes(features, 4);
    for (std::size_t compression = 0; compression < 4; ++compression) {
        const circuit c = build_autoencoder_circuit(amps, params, compression);
        std::size_t resets = 0;
        for (const auto& op : c.ops()) {
            resets += op.kind == op_kind::reset ? 1 : 0;
        }
        EXPECT_EQ(resets, compression);
    }
}

TEST(Autoencoder, CompressionMustLeaveAQubit) {
    quorum::util::rng gen(7);
    const ansatz_params params = random_ansatz_params(3, 2, gen);
    const std::vector<double> amps = random_amplitudes(3, gen);
    EXPECT_THROW(build_autoencoder_circuit(amps, params, 3),
                 quorum::util::contract_error);
    EXPECT_THROW((void)analytic_swap_p1(amps, params, 3),
                 quorum::util::contract_error);
}

TEST(Autoencoder, ZeroCompressionIsPerfectReconstruction) {
    // Without the bottleneck, D(θ)E(θ) = identity, so the SWAP test sees
    // identical states: P(1) = 0 exactly.
    quorum::util::rng gen(9);
    for (int trial = 0; trial < 10; ++trial) {
        const ansatz_params params = random_ansatz_params(3, 2, gen);
        const std::vector<double> amps = random_amplitudes(3, gen);
        EXPECT_NEAR(analytic_swap_p1(amps, params, 0), 0.0, 1e-10);
        const circuit c = build_autoencoder_circuit(amps, params, 0);
        EXPECT_NEAR(statevector_runner::run_exact(c).cbit_probability_one(
                        swap_result_cbit),
                    0.0, 1e-10);
    }
}

TEST(Autoencoder, AnalyticMatchesFullCircuit) {
    // The register-A shortcut and the real 2n+1-qubit circuit must agree
    // to numerical precision — this validates the entire fast path.
    quorum::util::rng gen(11);
    for (int trial = 0; trial < 12; ++trial) {
        const std::size_t n = 2 + gen.uniform_index(2); // 2..3 qubits
        const std::size_t compression = 1 + gen.uniform_index(n - 1);
        const ansatz_params params = random_ansatz_params(n, 2, gen);
        const std::vector<double> amps = random_amplitudes(n, gen);
        const double analytic = analytic_swap_p1(amps, params, compression);
        const circuit c = build_autoencoder_circuit(amps, params, compression);
        const double full = statevector_runner::run_exact(c)
                                .cbit_probability_one(swap_result_cbit);
        EXPECT_NEAR(analytic, full, 1e-10);
    }
}

TEST(Autoencoder, P1WithinPhysicalBounds) {
    quorum::util::rng gen(13);
    for (int trial = 0; trial < 20; ++trial) {
        const ansatz_params params = random_ansatz_params(3, 2, gen);
        const std::vector<double> amps = random_amplitudes(3, gen);
        for (std::size_t level = 1; level <= 2; ++level) {
            const double p1 = analytic_swap_p1(amps, params, level);
            EXPECT_GE(p1, -1e-12);
            EXPECT_LE(p1, 0.5 + 1e-12);
        }
    }
}

TEST(Autoencoder, DifferentSamplesGiveDifferentSignals) {
    // The deviation signal must depend on the data, not only on θ.
    quorum::util::rng gen(17);
    const ansatz_params params = random_ansatz_params(3, 2, gen);
    const std::vector<double> normal{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
    const std::vector<double> outlier{0.3, 0.0, 0.3, 0.0, 0.3, 0.0, 0.3};
    const double p_normal =
        analytic_swap_p1(to_amplitudes(normal, 3), params, 1);
    const double p_outlier =
        analytic_swap_p1(to_amplitudes(outlier, 3), params, 1);
    EXPECT_GT(std::abs(p_normal - p_outlier), 1e-6);
}

TEST(Autoencoder, DeterministicInParams) {
    quorum::util::rng gen(19);
    const ansatz_params params = random_ansatz_params(3, 2, gen);
    const std::vector<double> amps = random_amplitudes(3, gen);
    const double a = analytic_swap_p1(amps, params, 2);
    const double b = analytic_swap_p1(amps, params, 2);
    EXPECT_DOUBLE_EQ(a, b);
}

class CompressionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressionSweep, AnalyticEqualsCircuitForEveryLevel) {
    quorum::util::rng gen(GetParam() * 31 + 3);
    const std::size_t n = 4;
    const std::size_t compression = GetParam();
    const ansatz_params params = random_ansatz_params(n, 2, gen);
    std::vector<double> features(max_features(n));
    for (double& f : features) {
        f = gen.uniform() * 0.2;
    }
    const std::vector<double> amps = to_amplitudes(features, n);
    const double analytic = analytic_swap_p1(amps, params, compression);
    const circuit c = build_autoencoder_circuit(amps, params, compression);
    const double full = statevector_runner::run_exact(c).cbit_probability_one(
        swap_result_cbit);
    EXPECT_NEAR(analytic, full, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Levels, CompressionSweep,
                         ::testing::Values(0u, 1u, 2u, 3u));

} // namespace
