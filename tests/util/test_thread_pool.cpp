#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace {

using quorum::util::default_thread_count;
using quorum::util::thread_pool;

TEST(ThreadPool, ZeroRequestedGivesOneWorker) {
    thread_pool pool(0);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
    thread_pool pool(2);
    auto future = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
    thread_pool pool(2);
    auto future = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
    thread_pool pool(4);
    std::vector<std::atomic<int>> visits(1000);
    pool.parallel_for(1000, [&](std::size_t i) { visits[i].fetch_add(1); });
    for (const auto& v : visits) {
        EXPECT_EQ(v.load(), 1);
    }
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
    thread_pool pool(2);
    bool called = false;
    pool.parallel_for(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForMoreTasksThanThreads) {
    thread_pool pool(2);
    std::atomic<long> sum{0};
    pool.parallel_for(10000, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 10000L * 9999L / 2L);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
    thread_pool pool(3);
    EXPECT_THROW((pool.parallel_for(100,
                                   [](std::size_t i) {
                                       if (i == 57) {
                                           throw std::runtime_error("body");
                                       }
                                   })), std::runtime_error);
}

TEST(ThreadPool, ParallelForContinuesAfterException) {
    thread_pool pool(3);
    // All non-throwing iterations must still run (no early abort guarantee
    // needed, but the pool must stay usable afterwards).
    try {
        pool.parallel_for(50, [](std::size_t i) {
            if (i == 0) {
                throw std::runtime_error("first");
            }
        });
    } catch (const std::runtime_error&) {
    }
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
    EXPECT_GE(default_thread_count(), 1u);
}

class PoolSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSizeSweep, SumIndependentOfPoolSize) {
    thread_pool pool(GetParam());
    std::atomic<long> sum{0};
    pool.parallel_for(777, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i * i));
    });
    long expected = 0;
    for (long i = 0; i < 777; ++i) {
        expected += i * i;
    }
    EXPECT_EQ(sum.load(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

} // namespace
