#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace {

using quorum::util::default_thread_count;
using quorum::util::thread_pool;

TEST(ThreadPool, ZeroRequestedGivesOneWorker) {
    thread_pool pool(0);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
    thread_pool pool(2);
    auto future = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
    thread_pool pool(2);
    auto future = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
    thread_pool pool(4);
    std::vector<std::atomic<int>> visits(1000);
    pool.parallel_for(1000, [&](std::size_t i) { visits[i].fetch_add(1); });
    for (const auto& v : visits) {
        EXPECT_EQ(v.load(), 1);
    }
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
    thread_pool pool(2);
    bool called = false;
    pool.parallel_for(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForMoreTasksThanThreads) {
    thread_pool pool(2);
    std::atomic<long> sum{0};
    pool.parallel_for(10000, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 10000L * 9999L / 2L);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
    thread_pool pool(3);
    EXPECT_THROW((pool.parallel_for(100,
                                   [](std::size_t i) {
                                       if (i == 57) {
                                           throw std::runtime_error("body");
                                       }
                                   })), std::runtime_error);
}

TEST(ThreadPool, ParallelForContinuesAfterException) {
    thread_pool pool(3);
    // All non-throwing iterations must still run (no early abort guarantee
    // needed, but the pool must stay usable afterwards).
    try {
        pool.parallel_for(50, [](std::size_t i) {
            if (i == 0) {
                throw std::runtime_error("first");
            }
        });
    } catch (const std::runtime_error&) {
    }
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
    EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
    // A body that re-enters parallel_for on the SAME pool: the caller
    // participates in the work loop instead of sleeping on futures, so
    // this completes even with a single worker.
    for (const std::size_t workers : {1u, 2u, 4u}) {
        thread_pool pool(workers);
        std::atomic<int> count{0};
        pool.parallel_for(4, [&](std::size_t) {
            pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
        });
        EXPECT_EQ(count.load(), 32) << workers << " workers";
    }
}

TEST(ThreadPool, ParallelForInsideSubmittedTaskCompletes) {
    thread_pool pool(1);
    auto future = pool.submit([&pool]() {
        long sum = 0;
        std::mutex m;
        pool.parallel_for(100, [&](std::size_t i) {
            const std::scoped_lock lock(m);
            sum += static_cast<long>(i);
        });
        return sum;
    });
    EXPECT_EQ(future.get(), 100L * 99L / 2L);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
    thread_pool pool(2);
    EXPECT_THROW(
        (pool.parallel_for(3,
                           [&](std::size_t) {
                               pool.parallel_for(3, [](std::size_t i) {
                                   if (i == 1) {
                                       throw std::runtime_error("inner");
                                   }
                               });
                           })),
        std::runtime_error);
    // The pool must stay fully usable afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ConcurrentParallelForCallsAreIndependent) {
    // Two threads driving parallel_for on one shared pool (the shape of
    // ensemble workers sharing one sharded engine).
    thread_pool pool(2);
    std::atomic<long> sum_a{0};
    std::atomic<long> sum_b{0};
    std::thread other([&]() {
        pool.parallel_for(500, [&](std::size_t i) {
            sum_a.fetch_add(static_cast<long>(i));
        });
    });
    pool.parallel_for(500, [&](std::size_t i) {
        sum_b.fetch_add(static_cast<long>(i));
    });
    other.join();
    EXPECT_EQ(sum_a.load(), 500L * 499L / 2L);
    EXPECT_EQ(sum_b.load(), 500L * 499L / 2L);
}

class PoolSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSizeSweep, SumIndependentOfPoolSize) {
    thread_pool pool(GetParam());
    std::atomic<long> sum{0};
    pool.parallel_for(777, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i * i));
    });
    long expected = 0;
    for (long i = 0; i < 777; ++i) {
        expected += i * i;
    }
    EXPECT_EQ(sum.load(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

} // namespace
