#include <complex>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "util/matrix.h"

namespace {

using quorum::util::cmatrix;
using cd = std::complex<double>;

TEST(Matrix, IdentityConstruction) {
    const cmatrix id = cmatrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_EQ(id(r, c), r == c ? cd(1.0) : cd(0.0));
        }
    }
}

TEST(Matrix, FromRowsValidatesSize) {
    EXPECT_THROW((cmatrix::from_rows(2, 2, {1.0, 2.0, 3.0})),
                 quorum::util::contract_error);
}

TEST(Matrix, MultiplyBasics) {
    const cmatrix a = cmatrix::from_rows(2, 2, {1, 2, 3, 4});
    const cmatrix b = cmatrix::from_rows(2, 2, {5, 6, 7, 8});
    const cmatrix c = a.multiply(b);
    EXPECT_EQ(c(0, 0), cd(19.0));
    EXPECT_EQ(c(0, 1), cd(22.0));
    EXPECT_EQ(c(1, 0), cd(43.0));
    EXPECT_EQ(c(1, 1), cd(50.0));
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
    const cmatrix a(2, 3);
    const cmatrix b(2, 3);
    EXPECT_THROW(a.multiply(b), quorum::util::contract_error);
}

TEST(Matrix, MultiplyNonSquare) {
    const cmatrix a = cmatrix::from_rows(1, 3, {1, 2, 3});
    const cmatrix b = cmatrix::from_rows(3, 1, {4, 5, 6});
    const cmatrix c = a.multiply(b);
    EXPECT_EQ(c.rows(), 1u);
    EXPECT_EQ(c.cols(), 1u);
    EXPECT_EQ(c(0, 0), cd(32.0));
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
    const cmatrix m = cmatrix::from_rows(2, 2, {cd(1, 2), cd(3, 4),
                                                cd(5, 6), cd(7, 8)});
    const cmatrix a = m.adjoint();
    EXPECT_EQ(a(0, 0), cd(1, -2));
    EXPECT_EQ(a(0, 1), cd(5, -6));
    EXPECT_EQ(a(1, 0), cd(3, -4));
    EXPECT_EQ(a(1, 1), cd(7, -8));
}

TEST(Matrix, KroneckerProduct) {
    const cmatrix x = cmatrix::from_rows(2, 2, {0, 1, 1, 0});
    const cmatrix id = cmatrix::identity(2);
    const cmatrix k = id.kron(x);
    EXPECT_EQ(k.rows(), 4u);
    EXPECT_EQ(k(0, 1), cd(1.0));
    EXPECT_EQ(k(1, 0), cd(1.0));
    EXPECT_EQ(k(2, 3), cd(1.0));
    EXPECT_EQ(k(3, 2), cd(1.0));
    EXPECT_EQ(k(0, 2), cd(0.0));
}

TEST(Matrix, ApplyVector) {
    const cmatrix m = cmatrix::from_rows(2, 2, {1, 2, 3, 4});
    const std::vector<cd> v{cd(1.0), cd(1.0)};
    const std::vector<cd> out = m.apply(v);
    EXPECT_EQ(out[0], cd(3.0));
    EXPECT_EQ(out[1], cd(7.0));
}

TEST(Matrix, ApplyRejectsWrongLength) {
    const cmatrix m = cmatrix::identity(2);
    EXPECT_THROW((m.apply(std::vector<cd>{cd(1.0)})),
                 quorum::util::contract_error);
}

TEST(Matrix, TraceOfIdentity) {
    EXPECT_EQ(cmatrix::identity(4).trace(), cd(4.0));
}

TEST(Matrix, TraceRequiresSquare) {
    EXPECT_THROW((void)cmatrix(2, 3).trace(), quorum::util::contract_error);
}

TEST(Matrix, DistanceZeroForEqual) {
    const cmatrix m = cmatrix::from_rows(2, 2, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(m.distance(m), 0.0);
}

TEST(Matrix, IsUnitaryDetectsUnitaries) {
    const double r = 1.0 / std::sqrt(2.0);
    const cmatrix h = cmatrix::from_rows(2, 2, {r, r, r, -r});
    EXPECT_TRUE(h.is_unitary());
    const cmatrix not_unitary = cmatrix::from_rows(2, 2, {1, 0, 0, 2});
    EXPECT_FALSE(not_unitary.is_unitary());
    EXPECT_FALSE(cmatrix(2, 3).is_unitary());
}

TEST(Matrix, EqualsUpToPhaseDetectsGlobalPhase) {
    const cmatrix m = cmatrix::from_rows(2, 2, {1, 0, 0, cd(0, 1)});
    const cd phase = std::exp(cd(0, 0.7));
    cmatrix shifted = m;
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
            shifted(r, c) = m(r, c) * phase;
        }
    }
    EXPECT_TRUE(shifted.equals_up_to_phase(m));
    EXPECT_TRUE(m.equals_up_to_phase(shifted));
}

TEST(Matrix, EqualsUpToPhaseRejectsDifferentMatrices) {
    const cmatrix a = cmatrix::from_rows(2, 2, {1, 0, 0, 1});
    const cmatrix b = cmatrix::from_rows(2, 2, {0, 1, 1, 0});
    EXPECT_FALSE(a.equals_up_to_phase(b));
}

TEST(Matrix, EqualsUpToPhaseRejectsScaling) {
    const cmatrix a = cmatrix::identity(2);
    cmatrix scaled = a;
    scaled(0, 0) = 2.0;
    scaled(1, 1) = 2.0;
    EXPECT_FALSE(scaled.equals_up_to_phase(a));
}

TEST(Matrix, OutOfBoundsAccessThrows) {
    cmatrix m(2, 2);
    EXPECT_THROW(m(2, 0), quorum::util::contract_error);
    EXPECT_THROW(m(0, 2), quorum::util::contract_error);
}

} // namespace
