#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "util/rng.h"

namespace {

using quorum::util::derive_seed;
using quorum::util::rng;

TEST(Rng, SameSeedSameStream) {
    rng a(42);
    rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    rng a(1);
    rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += a.engine()() == b.engine()() ? 1 : 0;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
    rng gen(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = gen.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected) {
    rng gen(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = gen.uniform(-2.5, 3.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 3.5);
    }
}

TEST(Rng, UniformRangeRejectsInverted) {
    rng gen(1);
    EXPECT_THROW(gen.uniform(1.0, 0.0), quorum::util::contract_error);
}

TEST(Rng, AngleCoversZeroTwoPi) {
    rng gen(11);
    double lo = 10.0;
    double hi = -10.0;
    for (int i = 0; i < 20000; ++i) {
        const double theta = gen.angle();
        lo = std::min(lo, theta);
        hi = std::max(hi, theta);
        EXPECT_GE(theta, 0.0);
        EXPECT_LT(theta, 2.0 * 3.14159265358979323846);
    }
    EXPECT_LT(lo, 0.1);
    EXPECT_GT(hi, 6.1);
}

TEST(Rng, UniformIndexBounds) {
    rng gen(13);
    std::vector<int> histogram(7, 0);
    for (int i = 0; i < 70000; ++i) {
        const std::size_t k = gen.uniform_index(7);
        ASSERT_LT(k, 7u);
        ++histogram[k];
    }
    // Roughly uniform: each bin within 15% of expectation.
    for (const int count : histogram) {
        EXPECT_NEAR(count, 10000, 1500);
    }
}

TEST(Rng, UniformIndexRejectsZero) {
    rng gen(1);
    EXPECT_THROW(gen.uniform_index(0), quorum::util::contract_error);
}

TEST(Rng, NormalMoments) {
    rng gen(17);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = gen.normal(2.0, 3.0);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, BernoulliEdgeCases) {
    rng gen(19);
    EXPECT_FALSE(gen.bernoulli(0.0));
    EXPECT_TRUE(gen.bernoulli(1.0));
    EXPECT_FALSE(gen.bernoulli(-0.5));
    EXPECT_TRUE(gen.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
    rng gen(23);
    int ones = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        ones += gen.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.3, 0.01);
}

TEST(Rng, BinomialEdgeCases) {
    rng gen(29);
    EXPECT_EQ(gen.binomial(0, 0.5), 0u);
    EXPECT_EQ(gen.binomial(100, 0.0), 0u);
    EXPECT_EQ(gen.binomial(100, 1.0), 100u);
}

TEST(Rng, BinomialMean) {
    rng gen(31);
    double total = 0.0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        total += static_cast<double>(gen.binomial(4096, 0.25));
    }
    EXPECT_NEAR(total / trials, 1024.0, 5.0);
}

TEST(Rng, PermutationIsPermutation) {
    rng gen(37);
    const std::vector<std::size_t> perm = gen.permutation(100);
    ASSERT_EQ(perm.size(), 100u);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
    rng gen(41);
    for (int trial = 0; trial < 50; ++trial) {
        const auto sample = gen.sample_without_replacement(50, 20);
        ASSERT_EQ(sample.size(), 20u);
        std::set<std::size_t> seen(sample.begin(), sample.end());
        EXPECT_EQ(seen.size(), 20u);
        for (const std::size_t s : sample) {
            EXPECT_LT(s, 50u);
        }
    }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
    rng gen(43);
    const auto sample = gen.sample_without_replacement(10, 10);
    std::set<std::size_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
    rng gen(47);
    EXPECT_THROW(gen.sample_without_replacement(5, 6),
                 quorum::util::contract_error);
}

TEST(Rng, ChildStreamsIndependent) {
    rng parent(1000);
    rng c0 = parent.child(0);
    rng c1 = parent.child(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += c0.engine()() == c1.engine()() ? 1 : 0;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, ChildDeterministicAndStateless) {
    rng parent(55);
    // Drawing from the parent must not change child derivation.
    rng before = parent.child(3);
    (void)parent.uniform();
    (void)parent.uniform();
    rng after = parent.child(3);
    for (int i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(before.uniform(), after.uniform());
    }
}

TEST(Rng, DeriveSeedMixesIndices) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        seeds.insert(derive_seed(12345, i));
    }
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, ShuffleKeepsElements) {
    rng gen(59);
    std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = values;
    gen.shuffle(std::span<int>(shuffled));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeForAllSeeds) {
    rng gen(GetParam());
    for (int i = 0; i < 1000; ++i) {
        const double u = gen.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST_P(RngSeedSweep, PermutationValidForAllSeeds) {
    rng gen(GetParam());
    const auto perm = gen.permutation(31);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 31u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL, 1000ULL,
                                           0xFFFFFFFFFFFFFFFFULL));

} // namespace
