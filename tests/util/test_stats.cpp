#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using quorum::util::mean;
using quorum::util::median;
using quorum::util::quantile;
using quorum::util::stddev_population;
using quorum::util::welford_accumulator;

TEST(Welford, EmptyAccumulator) {
    welford_accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance_population(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance_sample(), 0.0);
}

TEST(Welford, SingleValue) {
    welford_accumulator acc;
    acc.add(5.0);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance_population(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance_sample(), 0.0);
}

TEST(Welford, MatchesNaiveComputation) {
    quorum::util::rng gen(3);
    std::vector<double> values;
    welford_accumulator acc;
    for (int i = 0; i < 1000; ++i) {
        const double v = gen.normal(10.0, 2.0);
        values.push_back(v);
        acc.add(v);
    }
    double naive_mean = 0.0;
    for (const double v : values) {
        naive_mean += v;
    }
    naive_mean /= static_cast<double>(values.size());
    double naive_var = 0.0;
    for (const double v : values) {
        naive_var += (v - naive_mean) * (v - naive_mean);
    }
    naive_var /= static_cast<double>(values.size());
    EXPECT_NEAR(acc.mean(), naive_mean, 1e-10);
    EXPECT_NEAR(acc.variance_population(), naive_var, 1e-8);
}

TEST(Welford, SampleVarianceUsesBesselCorrection) {
    welford_accumulator acc;
    acc.add(1.0);
    acc.add(3.0);
    EXPECT_DOUBLE_EQ(acc.variance_population(), 1.0);
    EXPECT_DOUBLE_EQ(acc.variance_sample(), 2.0);
}

TEST(Welford, MergeEqualsSequential) {
    quorum::util::rng gen(5);
    welford_accumulator combined;
    welford_accumulator left;
    welford_accumulator right;
    for (int i = 0; i < 500; ++i) {
        const double v = gen.uniform(-3.0, 7.0);
        combined.add(v);
        (i % 2 == 0 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), combined.count());
    EXPECT_NEAR(left.mean(), combined.mean(), 1e-12);
    EXPECT_NEAR(left.variance_population(), combined.variance_population(),
                1e-10);
}

TEST(Welford, MergeWithEmpty) {
    welford_accumulator acc;
    acc.add(1.0);
    acc.add(2.0);
    welford_accumulator empty;
    acc.merge(empty);
    EXPECT_EQ(acc.count(), 2u);
    empty.merge(acc);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Welford, NumericallyStableOnLargeOffsets) {
    welford_accumulator acc;
    const double offset = 1e9;
    for (int i = 0; i < 100; ++i) {
        acc.add(offset + static_cast<double>(i % 2));
    }
    EXPECT_NEAR(acc.variance_population(), 0.25, 1e-6);
}

TEST(Stats, MeanOfEmptyIsZero) {
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(mean(empty), 0.0);
    EXPECT_DOUBLE_EQ(stddev_population(empty), 0.0);
}

TEST(Stats, MeanAndStddevBasics) {
    const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(values), 5.0);
    EXPECT_DOUBLE_EQ(stddev_population(values), 2.0);
}

TEST(Stats, QuantileEndpoints) {
    const std::vector<double> values{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(values, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.0);
}

TEST(Stats, QuantileInterpolates) {
    const std::vector<double> values{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantile(values, 0.75), 7.5);
}

TEST(Stats, QuantileSingleValue) {
    const std::vector<double> values{42.0};
    EXPECT_DOUBLE_EQ(quantile(values, 0.3), 42.0);
}

TEST(Stats, QuantileRejectsEmptyAndOutOfRange) {
    const std::vector<double> empty;
    EXPECT_THROW((void)quantile(empty, 0.5), quorum::util::contract_error);
    const std::vector<double> values{1.0};
    EXPECT_THROW((void)quantile(values, -0.1), quorum::util::contract_error);
    EXPECT_THROW((void)quantile(values, 1.1), quorum::util::contract_error);
}

TEST(Stats, MedianOddAndEven) {
    const std::vector<double> odd{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(median(odd), 3.0);
    const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(median(even), 2.5);
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MonotoneInQ) {
    quorum::util::rng gen(11);
    std::vector<double> values;
    for (int i = 0; i < 200; ++i) {
        values.push_back(gen.uniform(-5.0, 5.0));
    }
    const double q = GetParam();
    if (q >= 0.05) {
        EXPECT_LE(quantile(values, q - 0.05), quantile(values, q) + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.95, 1.0));

} // namespace
