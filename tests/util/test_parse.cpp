// util/parse.h: the strict parsing helpers behind every tool flag. The
// regression of record is CLI flags silently mis-parsing via std::atoi
// ("--retry banana" → 0 retries, "--workers -1" → 2^64 - 1 workers);
// these tests pin the strict behaviour for garbage, negatives, overflow
// and trailing junk.
#include "util/parse.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace {

using namespace quorum;

TEST(Parse, UnsignedAcceptsPlainDigits) {
    unsigned long long value = 99;
    EXPECT_TRUE(util::parse_unsigned("0", value));
    EXPECT_EQ(value, 0u);
    EXPECT_TRUE(util::parse_unsigned("42", value));
    EXPECT_EQ(value, 42u);
    EXPECT_TRUE(util::parse_unsigned("18446744073709551615", value));
    EXPECT_EQ(value, std::numeric_limits<unsigned long long>::max());
}

TEST(Parse, UnsignedRejectsGarbageSignsAndOverflow) {
    unsigned long long value = 7;
    EXPECT_FALSE(util::parse_unsigned("", value));
    EXPECT_FALSE(util::parse_unsigned("banana", value));
    EXPECT_FALSE(util::parse_unsigned("12banana", value));
    EXPECT_FALSE(util::parse_unsigned("-1", value));
    EXPECT_FALSE(util::parse_unsigned("+1", value));
    EXPECT_FALSE(util::parse_unsigned(" 1", value));
    EXPECT_FALSE(util::parse_unsigned("1 ", value));
    // One past max: must report overflow, not wrap.
    EXPECT_FALSE(util::parse_unsigned("18446744073709551616", value));
    EXPECT_EQ(value, 7u) << "failed parses must not clobber the output";
}

TEST(Parse, CountFitsTargetType) {
    int retries = -1;
    EXPECT_TRUE(util::parse_count("3", retries));
    EXPECT_EQ(retries, 3);
    EXPECT_TRUE(util::parse_count("2147483647", retries));
    EXPECT_EQ(retries, std::numeric_limits<int>::max());
    // INT_MAX + 1 fits unsigned long long but not int.
    EXPECT_FALSE(util::parse_count("2147483648", retries));
    EXPECT_FALSE(util::parse_count("-1", retries));
    EXPECT_FALSE(util::parse_count("banana", retries));

    std::size_t wide = 0;
    EXPECT_TRUE(util::parse_count("2147483648", wide));
    EXPECT_EQ(wide, 2147483648u);

    std::uint8_t tiny = 0;
    EXPECT_TRUE(util::parse_count("255", tiny));
    EXPECT_EQ(tiny, 255u);
    EXPECT_FALSE(util::parse_count("256", tiny));
}

TEST(Parse, RealConsumesWholeString) {
    double value = 0.0;
    EXPECT_TRUE(util::parse_real("0.75", value));
    EXPECT_DOUBLE_EQ(value, 0.75);
    EXPECT_TRUE(util::parse_real("-2.5e-3", value));
    EXPECT_DOUBLE_EQ(value, -2.5e-3);
    EXPECT_FALSE(util::parse_real("", value));
    EXPECT_FALSE(util::parse_real("banana", value));
    EXPECT_FALSE(util::parse_real("0.5abc", value));
    EXPECT_FALSE(util::parse_real("0.5 ", value));
}

TEST(Parse, IntAcceptsNegativesButNotGarbage) {
    int value = 0;
    EXPECT_TRUE(util::parse_int("-1", value));
    EXPECT_EQ(value, -1);
    EXPECT_TRUE(util::parse_int("2147483647", value));
    EXPECT_EQ(value, std::numeric_limits<int>::max());
    EXPECT_TRUE(util::parse_int("-2147483648", value));
    EXPECT_EQ(value, std::numeric_limits<int>::min());
    EXPECT_FALSE(util::parse_int("2147483648", value));
    EXPECT_FALSE(util::parse_int("-2147483649", value));
    EXPECT_FALSE(util::parse_int("banana", value));
    EXPECT_FALSE(util::parse_int("3banana", value));
    EXPECT_FALSE(util::parse_int("", value));
}

} // namespace
