#include <string>

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace {

using quorum::util::contract_error;

int checked_divide(int a, int b) {
    QUORUM_EXPECTS_MSG(b != 0, "division by zero");
    return a / b;
}

TEST(Contracts, ExpectsPassesOnTrue) {
    EXPECT_NO_THROW(QUORUM_EXPECTS(1 + 1 == 2));
}

TEST(Contracts, ExpectsThrowsOnFalse) {
    EXPECT_THROW(QUORUM_EXPECTS(1 + 1 == 3), contract_error);
}

TEST(Contracts, EnsuresThrowsOnFalse) {
    EXPECT_THROW(QUORUM_ENSURES(false), contract_error);
}

TEST(Contracts, MessageIncludesConditionAndText) {
    try {
        checked_divide(1, 0);
        FAIL() << "expected contract_error";
    } catch (const contract_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("b != 0"), std::string::npos);
        EXPECT_NE(what.find("division by zero"), std::string::npos);
        EXPECT_NE(what.find("precondition"), std::string::npos);
    }
}

TEST(Contracts, ContractErrorIsLogicError) {
    EXPECT_THROW(QUORUM_EXPECTS(false), std::logic_error);
}

} // namespace
