#include <gtest/gtest.h>

#include "util/contracts.h"

#include "core/config.h"

namespace {

using namespace quorum::core;

TEST(Config, DefaultsAreValid) {
    quorum_config config;
    EXPECT_NO_THROW(config.validate());
    EXPECT_EQ(config.n_qubits, 3u); // paper's primary configuration
    EXPECT_EQ(config.shots, 4096u); // paper §V
}

TEST(Config, EffectiveCompressionLevelsDefault) {
    quorum_config config;
    config.n_qubits = 3;
    EXPECT_EQ(config.effective_compression_levels(),
              (std::vector<std::size_t>{1, 2}));
    config.n_qubits = 4;
    EXPECT_EQ(config.effective_compression_levels(),
              (std::vector<std::size_t>{1, 2, 3}));
}

TEST(Config, ExplicitCompressionLevelsRespected) {
    quorum_config config;
    config.compression_levels = {2};
    EXPECT_EQ(config.effective_compression_levels(),
              (std::vector<std::size_t>{2}));
    EXPECT_NO_THROW(config.validate());
}

TEST(Config, RejectsBadQubitCounts) {
    quorum_config config;
    config.n_qubits = 1;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.n_qubits = 11;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
}

TEST(Config, RejectsBadBucketProbability) {
    quorum_config config;
    config.bucket_probability = 0.0;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.bucket_probability = 1.0;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
}

TEST(Config, RejectsBadAnomalyRate) {
    quorum_config config;
    config.estimated_anomaly_rate = 0.0;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.estimated_anomaly_rate = 1.0;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
}

TEST(Config, RejectsOutOfRangeCompression) {
    quorum_config config;
    config.n_qubits = 3;
    config.compression_levels = {0};
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.compression_levels = {3};
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
}

TEST(Config, RejectsZeroGroupsAndShots) {
    quorum_config config;
    config.ensemble_groups = 0;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config = quorum_config{};
    config.mode = exec_mode::sampled;
    config.shots = 0;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    // exact mode doesn't need shots.
    config.mode = exec_mode::exact;
    EXPECT_NO_THROW(config.validate());
}

TEST(Config, ShardedBackendSpecsResolveAndValidate) {
    quorum_config config;
    config.backend = "sharded";
    config.shards = 2;
    EXPECT_EQ(config.resolved_backend(), "sharded:statevector");
    EXPECT_NO_THROW(config.validate());

    config.mode = exec_mode::noisy;
    EXPECT_EQ(config.resolved_backend(), "sharded:density");
    EXPECT_NO_THROW(config.validate());

    config.backend = "sharded:auto";
    EXPECT_EQ(config.resolved_backend(), "sharded:density");
    config.mode = exec_mode::exact;
    EXPECT_EQ(config.resolved_backend(), "sharded:statevector");

    config.backend = "sharded:statevector";
    EXPECT_EQ(config.resolved_backend(), "sharded:statevector");
    EXPECT_NO_THROW(config.validate());
    EXPECT_EQ(config.to_engine_config().shards, 2u);
}

TEST(Config, RemoteBackendSpecsResolveAndValidate) {
    quorum_config config;
    config.backend = "remote";
    config.shards = 2;
    EXPECT_EQ(config.resolved_backend(), "remote:statevector");
    // Validation instantiates the backend; remote construction is
    // process-free (only the local probe of the inner engine), so this
    // must succeed without any quorum_worker binary around.
    EXPECT_NO_THROW(config.validate());

    config.mode = exec_mode::noisy;
    EXPECT_EQ(config.resolved_backend(), "remote:density");
    EXPECT_NO_THROW(config.validate());

    config.backend = "remote:auto";
    EXPECT_EQ(config.resolved_backend(), "remote:density");
    config.mode = exec_mode::exact;
    EXPECT_EQ(config.resolved_backend(), "remote:statevector");

    config.backend = "remote:bogus";
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.backend = "remote:";
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.backend = "remote:remote";
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.backend = "remote:sharded";
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    // Incompatible mode/inner pairs fail at the local probe.
    config.backend = "remote:density";
    config.mode = exec_mode::per_shot;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
}

TEST(Config, RejectsMalformedOrIncompatibleShardedSpecs) {
    quorum_config config;
    config.backend = "sharded:bogus";
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.backend = "sharded:";
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.backend = "sharded:sharded:statevector";
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    config.backend = "statevector:statevector";
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
    // Incompatible mode/inner pairs fail exactly as they do unsharded.
    config.backend = "sharded:density";
    config.mode = exec_mode::per_shot;
    EXPECT_THROW(config.validate(), quorum::util::contract_error);
}

TEST(Config, ModeNames) {
    EXPECT_STREQ(exec_mode_name(exec_mode::exact), "exact");
    EXPECT_STREQ(exec_mode_name(exec_mode::sampled), "sampled");
    EXPECT_STREQ(exec_mode_name(exec_mode::per_shot), "per_shot");
    EXPECT_STREQ(exec_mode_name(exec_mode::noisy), "noisy");
}


TEST(Config, FeatureStrategyNames) {
    EXPECT_STREQ(feature_strategy_name(feature_strategy::uniform_random),
                 "uniform_random");
    EXPECT_STREQ(feature_strategy_name(feature_strategy::top_variance),
                 "top_variance");
    quorum_config config;
    EXPECT_EQ(config.features, feature_strategy::uniform_random);
}

} // namespace
