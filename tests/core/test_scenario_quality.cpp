// Detection-quality regression harness: pinned ROC-AUC lower bounds per
// (scenario, detector). bench_scenarios reports the same numbers for
// humans; THIS file is what makes a quality regression fail CI — an
// engine or generator change that silently degrades separation on any
// scenario trips a bound here.
//
// Bounds are deliberately below the observed values (see
// BENCH_scenarios.json: amplitude/angle ~1.0, hybrid ~0.99, HEP ~0.97)
// so they only fire on real regressions, not on seed-level jitter from
// intentional generator retuning.
#include <vector>

#include <gtest/gtest.h>

#include "baseline/hybrid_qae.h"
#include "core/quorum.h"
#include "data/generators.h"
#include "metrics/roc.h"
#include "util/rng.h"

namespace {

using namespace quorum;

data::dataset scenario_dataset() {
    util::rng gen(2025);
    data::generator_spec spec;
    spec.name = "scenario_flagship";
    spec.samples = 256;
    spec.anomalies = 16;
    spec.features = 12;
    return data::generate_clustered(spec, gen);
}

core::quorum_config scenario_config(qml::encoding enc) {
    core::quorum_config config;
    config.encoding = enc;
    config.ensemble_groups = 40;
    config.mode = core::exec_mode::exact;
    config.seed = 2025;
    return config;
}

double scenario_auc(const data::dataset& d,
                    const core::quorum_config& config) {
    const core::quorum_detector detector(config);
    return metrics::roc_auc(d.labels(), detector.score(d).scores);
}

TEST(ScenarioQuality, FlagshipAmplitudeAucLowerBound) {
    // The paper's configuration on the flagship tabular scenario: the
    // reference every other scenario is compared against.
    const double auc =
        scenario_auc(scenario_dataset(),
                     scenario_config(qml::encoding::amplitude));
    EXPECT_GT(auc, 0.95) << "amplitude flagship detection regressed";
}

TEST(ScenarioQuality, AngleEncodingAucLowerBound) {
    // The angle ablation must stay competitive with amplitude on the
    // same data — the encoding changes the state geometry, not the
    // ensemble's ability to separate planted anomalies.
    const double auc = scenario_auc(scenario_dataset(),
                                    scenario_config(qml::encoding::angle));
    EXPECT_GT(auc, 0.95) << "angle-encoding detection regressed";
}

TEST(ScenarioQuality, HybridBaselineAucLowerBound) {
    // PCA(4) -> n = 2 Quorum: the classical bottleneck discards noise
    // dimensions, so quality should survive the smaller register.
    const data::dataset d = scenario_dataset();
    baseline::hybrid_qae_config config;
    config.detector.ensemble_groups = 40;
    config.detector.mode = core::exec_mode::exact;
    config.detector.seed = 2025;
    baseline::hybrid_qae hybrid(config);
    hybrid.fit(d);
    const double auc =
        metrics::roc_auc(d.labels(), hybrid.score_all(d).scores);
    EXPECT_GT(auc, 0.9) << "hybrid PCA+QAE detection regressed";
}

TEST(ScenarioQuality, HepResonanceAucLowerBound) {
    // Resonance-bump events against the falling QCD spectrum
    // (arXiv:2112.04958's setting) under the flagship detector.
    util::rng gen(2025);
    const data::dataset d = data::make_hep_events(data::hep_spec{}, gen);
    const double auc =
        scenario_auc(d, scenario_config(qml::encoding::amplitude));
    EXPECT_GT(auc, 0.9) << "HEP dijet detection regressed";
}

TEST(ScenarioQuality, HepAngleEncodingAucLowerBound) {
    // The HEP table has 6 features — exactly 2 angle registers' worth:
    // the ablation must also separate the resonance on this domain.
    util::rng gen(2025);
    const data::dataset d = data::make_hep_events(data::hep_spec{}, gen);
    const double auc =
        scenario_auc(d, scenario_config(qml::encoding::angle));
    EXPECT_GT(auc, 0.85) << "HEP angle-encoding detection regressed";
}

} // namespace
