#include <atomic>
#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "core/quorum.h"
#include "data/bucketing.h"
#include "data/generators.h"
#include "data/preprocess.h"
#include "metrics/confusion.h"
#include "metrics/detection_curve.h"
#include "util/rng.h"

namespace {

using namespace quorum::core;
using quorum::data::dataset;

dataset planted_dataset(std::uint64_t seed, std::size_t samples = 120,
                        std::size_t anomalies = 6) {
    quorum::util::rng gen(seed);
    quorum::data::generator_spec spec;
    spec.samples = samples;
    spec.anomalies = anomalies;
    spec.features = 12;
    spec.anomaly_shift = 0.35;
    spec.anomaly_feature_fraction = 0.5;
    return quorum::data::generate_clustered(spec, gen);
}

quorum_config fast_config() {
    quorum_config config;
    config.ensemble_groups = 40;
    config.estimated_anomaly_rate = 0.05;
    config.seed = 11;
    return config;
}

TEST(QuorumDetector, ValidatesConfigAtConstruction) {
    quorum_config bad;
    bad.n_qubits = 0;
    EXPECT_THROW((quorum_detector{bad}), quorum::util::contract_error);
}

TEST(QuorumDetector, ScoresEverySample) {
    const dataset d = planted_dataset(3);
    quorum_detector detector(fast_config());
    const score_report report = detector.score(d);
    EXPECT_EQ(report.scores.size(), d.num_samples());
    EXPECT_EQ(report.groups, 40u);
    for (const double s : report.scores) {
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_GE(s, 0.0);
    }
}

TEST(QuorumDetector, SeparatesPlantedAnomalies) {
    const dataset d = planted_dataset(5);
    quorum_detector detector(fast_config());
    const score_report report = detector.score(d);
    const double rate = quorum::metrics::detection_rate_at(
        d.labels(), report.scores, 0.2);
    // Random ranking would find ~20%; require clear signal.
    EXPECT_GT(rate, 0.5);
}

TEST(QuorumDetector, LabelsNeverInfluenceScores) {
    // Unsupervised guarantee: identical scores with and without labels.
    const dataset labelled = planted_dataset(7);
    const dataset unlabelled = labelled.without_labels();
    quorum_detector detector(fast_config());
    const score_report with_labels = detector.score(labelled);
    const score_report without_labels = detector.score(unlabelled);
    EXPECT_EQ(with_labels.scores, without_labels.scores);
}

TEST(QuorumDetector, DeterministicAcrossThreadCounts) {
    const dataset d = planted_dataset(9, 80, 4);
    quorum_config config = fast_config();
    config.ensemble_groups = 16;
    config.threads = 1;
    quorum_detector serial(config);
    const score_report serial_report = serial.score(d);
    for (const std::size_t threads : {2u, 4u, 8u}) {
        config.threads = threads;
        quorum_detector parallel_detector(config);
        const score_report parallel_report = parallel_detector.score(d);
        ASSERT_EQ(parallel_report.scores.size(), serial_report.scores.size());
        for (std::size_t i = 0; i < serial_report.scores.size(); ++i) {
            ASSERT_DOUBLE_EQ(parallel_report.scores[i],
                             serial_report.scores[i])
                << "threads=" << threads << " sample=" << i;
        }
    }
}

TEST(QuorumDetector, DeterministicAcrossRepeats) {
    const dataset d = planted_dataset(11, 60, 3);
    quorum_detector detector(fast_config());
    const score_report a = detector.score(d);
    const score_report b = detector.score(d);
    EXPECT_EQ(a.scores, b.scores);
}

TEST(QuorumDetector, SeedChangesScoresButNotQuality) {
    const dataset d = planted_dataset(13);
    quorum_config config = fast_config();
    quorum_detector first(config);
    config.seed = 9999;
    quorum_detector second(config);
    const score_report a = first.score(d);
    const score_report b = second.score(d);
    EXPECT_NE(a.scores, b.scores);
    // Both seeds must still detect signal.
    EXPECT_GT(quorum::metrics::detection_rate_at(d.labels(), a.scores, 0.2),
              0.4);
    EXPECT_GT(quorum::metrics::detection_rate_at(d.labels(), b.scores, 0.2),
              0.4);
}

TEST(QuorumDetector, SampledModeCloseToExact) {
    const dataset d = planted_dataset(15, 80, 4);
    quorum_config config = fast_config();
    config.ensemble_groups = 30;
    quorum_detector exact_detector(config);
    config.mode = exec_mode::sampled;
    config.shots = 4096; // paper's shot count
    quorum_detector sampled_detector(config);
    const score_report exact = exact_detector.score(d);
    const score_report sampled = sampled_detector.score(d);
    // Rankings should agree broadly: compare top-10% overlap.
    const auto top_exact = quorum::metrics::top_k_indices(exact.scores, 8);
    const auto top_sampled = quorum::metrics::top_k_indices(sampled.scores, 8);
    std::size_t overlap = 0;
    for (const auto i : top_exact) {
        for (const auto j : top_sampled) {
            overlap += i == j ? 1 : 0;
        }
    }
    EXPECT_GE(overlap, 4u);
}

TEST(QuorumDetector, DetectReturnsFlagCountIndices) {
    const dataset d = planted_dataset(17);
    quorum_config config = fast_config();
    config.estimated_anomaly_rate = 0.05;
    quorum_detector detector(config);
    const auto detected = detector.detect(d);
    EXPECT_EQ(detected.size(), detector.flag_count(d.num_samples()));
    EXPECT_EQ(detector.flag_count(120), 6u); // ceil(0.05 * 120)
    EXPECT_EQ(detector.flag_count(10), 1u);  // ceil(0.5) floor of 1
}

TEST(QuorumDetector, FlagCountAndBucketSizingShareCeilRounding) {
    // §IV-C regression: estimated_anomaly_rate * n is rounded with ceil
    // EVERYWHERE — flag_count here, bucket sizing in run_ensemble_group
    // (see Ensemble.FractionalAnomalyEstimatesRoundUpLikeFlagCount). Pin
    // the fractional cases on both sides of .5.
    quorum_config config = fast_config();
    config.estimated_anomaly_rate = 0.12; // 20 * 0.12 = 2.4
    EXPECT_EQ(quorum_detector(config).flag_count(20), 3u);
    config.estimated_anomaly_rate = 0.125; // 20 * 0.125 = 2.5
    EXPECT_EQ(quorum_detector(config).flag_count(20), 3u);

    // The same estimate drives bucket sizing: a 20-sample group plans for
    // 3 anomalies in both cases.
    const dataset d = planted_dataset(29, 20, 2);
    const quorum::data::dataset normalized =
        quorum::data::normalize_for_quorum(d.without_labels());
    for (const double rate : {0.12, 0.125}) {
        config.estimated_anomaly_rate = rate;
        const group_result group = run_ensemble_group(normalized, config, 0);
        EXPECT_EQ(group.bucket_size,
                  quorum::data::solve_bucket_size(
                      20, 3, config.bucket_probability))
            << "rate " << rate;
    }
}

TEST(QuorumDetector, ProgressCallbackSeesEveryGroup) {
    const dataset d = planted_dataset(19, 40, 2);
    quorum_config config = fast_config();
    config.ensemble_groups = 10;
    quorum_detector detector(config);
    std::atomic<std::size_t> calls{0};
    std::atomic<std::size_t> final_done{0};
    detector.set_progress_callback([&](std::size_t done, std::size_t total) {
        calls.fetch_add(1);
        EXPECT_EQ(total, 10u);
        final_done.store(std::max(final_done.load(), done));
    });
    (void)detector.score(d);
    EXPECT_EQ(calls.load(), 10u);
    EXPECT_EQ(final_done.load(), 10u);
}

TEST(QuorumDetector, ProgressCallbackDeliveryIsSerialized) {
    // Many groups, many pool workers: without the detector's internal
    // mutex, callbacks would run concurrently (the `inside` flag would
    // trip) and completion counts could arrive out of order. The state
    // below is deliberately unsynchronised beyond the detector's own
    // guarantee.
    const dataset d = planted_dataset(21, 30, 2);
    quorum_config config = fast_config();
    config.ensemble_groups = 24;
    config.threads = 8;
    quorum_detector detector(config);

    std::atomic<bool> inside{false};
    std::atomic<bool> overlapped{false};
    std::size_t last_done = 0; // plain: protected only by serialization
    std::atomic<bool> out_of_order{false};
    detector.set_progress_callback([&](std::size_t done, std::size_t) {
        if (inside.exchange(true)) {
            overlapped.store(true);
        }
        if (done != last_done + 1) {
            out_of_order.store(true);
        }
        last_done = done;
        inside.store(false);
    });
    (void)detector.score(d);
    EXPECT_FALSE(overlapped.load()) << "progress callbacks overlapped";
    EXPECT_FALSE(out_of_order.load())
        << "completion counts did not arrive strictly increasing";
    EXPECT_EQ(last_done, 24u);
}

TEST(QuorumDetector, RejectsDegenerateDatasets) {
    quorum_detector detector(fast_config());
    dataset single(1, 4);
    EXPECT_THROW(detector.score(single), quorum::util::contract_error);
}

TEST(QuorumDetector, WorksWithFewerFeaturesThanRegister) {
    // Power-plant case: 5 features < 2^3 - 1 slots.
    quorum::util::rng gen(23);
    const dataset plant = quorum::data::make_power_plant(gen);
    quorum_config config = fast_config();
    config.ensemble_groups = 20;
    config.estimated_anomaly_rate = 0.03;
    quorum_detector detector(config);
    const score_report report = detector.score(plant);
    EXPECT_GT(quorum::metrics::detection_rate_at(plant.labels(), report.scores,
                                                 0.2),
              0.4);
}

TEST(QuorumDetector, FourQubitEncodingRuns) {
    // §IV-F scalability: larger encodings add compression levels ("moments").
    const dataset d = planted_dataset(25, 60, 3);
    quorum_config config = fast_config();
    config.n_qubits = 4;
    config.ensemble_groups = 10;
    quorum_detector detector(config);
    const score_report report = detector.score(d);
    EXPECT_EQ(report.scores.size(), 60u);
    for (const double s : report.scores) {
        EXPECT_TRUE(std::isfinite(s));
    }
}

class QuorumModeSweep : public ::testing::TestWithParam<exec_mode> {};

TEST_P(QuorumModeSweep, AllModesProduceFiniteScores) {
    const dataset d = planted_dataset(27, 24, 2);
    quorum_config config = fast_config();
    config.ensemble_groups = 2;
    config.mode = GetParam();
    config.shots = GetParam() == exec_mode::per_shot ? 64 : 512;
    quorum_detector detector(config);
    const score_report report = detector.score(d);
    for (const double s : report.scores) {
        ASSERT_TRUE(std::isfinite(s));
        ASSERT_GE(s, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, QuorumModeSweep,
                         ::testing::Values(exec_mode::exact,
                                           exec_mode::sampled,
                                           exec_mode::per_shot,
                                           exec_mode::noisy));

} // namespace
