// Golden scores and backend-invariance for the ANGLE encoding — the
// same contract tests/core/test_golden_scores.cpp pins for the paper's
// amplitude configuration, replayed with config.encoding = angle:
//
//   * committed %.17g fixtures for all four exec modes (exact, sampled,
//     per_shot, noisy), diffed bit-for-bit on every run;
//   * sharded:{1,2,3} lanes, a remote 2-worker fleet and the plain
//     backend all land on IEEE-identical scores in every mode.
//
// Regenerate with:  QUORUM_REGEN_FIXTURES=1 ctest -R AngleGolden
// Platform scope: same as test_golden_scores.cpp (one libm platform).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quorum.h"
#include "data/generators.h"
#include "util/rng.h"

namespace {

using namespace quorum;

data::dataset angle_dataset(std::size_t samples) {
    util::rng gen(2025);
    data::generator_spec spec;
    spec.samples = samples;
    spec.anomalies = std::max<std::size_t>(1, samples / 16);
    spec.features = 12;
    spec.anomaly_shift = 0.3;
    return data::generate_clustered(spec, gen);
}

core::quorum_config angle_config(core::exec_mode mode, std::size_t groups) {
    core::quorum_config config;
    config.encoding = qml::encoding::angle;
    config.ensemble_groups = groups;
    config.mode = mode;
    // per_shot simulates every repetition; 256 shots keeps the golden
    // run fast while still exercising the full stochastic path.
    config.shots = mode == core::exec_mode::exact ? 4096 : 256;
    config.seed = 2025;
    return config;
}

std::vector<double> score_with(const core::quorum_config& config,
                               const data::dataset& d) {
    const core::quorum_detector detector(config);
    return detector.score(d).scores;
}

std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string fixture_path(const std::string& name) {
    return std::string(QUORUM_TEST_FIXTURE_DIR) + "/" + name;
}

bool env_flag(const char* name) {
    const char* raw = std::getenv(name);
    return raw != nullptr && raw[0] != '\0' && raw[0] != '0';
}

void write_fixture(const std::string& path,
                   const std::vector<std::string>& columns,
                   const std::vector<std::vector<double>>& series) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "sample";
    for (const std::string& column : columns) {
        out << "," << column;
    }
    out << "\n";
    for (std::size_t i = 0; i < series[0].size(); ++i) {
        out << i;
        for (const std::vector<double>& values : series) {
            out << "," << format_double(values[i]);
        }
        out << "\n";
    }
}

void compare_fixture(const std::string& path,
                     const std::vector<std::string>& columns,
                     const std::vector<std::vector<double>>& series) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " is missing — regenerate the golden fixtures with "
        << "QUORUM_REGEN_FIXTURES=1 and commit the result";
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    std::string expected_header = "sample";
    for (const std::string& column : columns) {
        expected_header += "," + column;
    }
    EXPECT_EQ(line, expected_header);
    std::size_t row = 0;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        ASSERT_LT(row, series[0].size()) << "fixture has extra rows";
        std::stringstream cells(line);
        std::string cell;
        ASSERT_TRUE(static_cast<bool>(std::getline(cells, cell, ',')));
        EXPECT_EQ(std::stoul(cell), row);
        for (std::size_t c = 0; c < series.size(); ++c) {
            ASSERT_TRUE(static_cast<bool>(std::getline(cells, cell, ',')))
                << "row " << row << " is missing column " << columns[c];
            EXPECT_EQ(std::stod(cell), series[c][row])
                << columns[c] << " drifted at sample " << row
                << " (engine change? regenerate fixtures deliberately "
                << "with QUORUM_REGEN_FIXTURES=1)";
        }
        ++row;
    }
    EXPECT_EQ(row, series[0].size()) << "fixture is missing rows";
}

void check_fixture(const std::string& name,
                   const std::vector<std::string>& columns,
                   const std::vector<std::vector<double>>& series) {
    const std::string path = fixture_path(name);
    if (env_flag("QUORUM_REGEN_FIXTURES")) {
        write_fixture(path, columns, series);
    }
    compare_fixture(path, columns, series);
}

TEST(AngleGolden, ExactAndSampledScoresMatchFixture) {
    if (env_flag("QUORUM_SKIP_GOLDEN_FIXTURES")) {
        GTEST_SKIP() << "golden fixtures skipped (non-CI platform)";
    }
    const data::dataset d = angle_dataset(48);
    const std::vector<double> exact =
        score_with(angle_config(core::exec_mode::exact, 6), d);
    const std::vector<double> sampled =
        score_with(angle_config(core::exec_mode::sampled, 6), d);
    check_fixture("angle_scores.csv", {"exact", "sampled"},
                  {exact, sampled});
}

TEST(AngleGolden, PerShotAndNoisyScoresMatchFixture) {
    if (env_flag("QUORUM_SKIP_GOLDEN_FIXTURES")) {
        GTEST_SKIP() << "golden fixtures skipped (non-CI platform)";
    }
    const data::dataset d = angle_dataset(12);
    const std::vector<double> per_shot =
        score_with(angle_config(core::exec_mode::per_shot, 2), d);
    const std::vector<double> noisy =
        score_with(angle_config(core::exec_mode::noisy, 2), d);
    check_fixture("angle_stochastic_scores.csv", {"per_shot", "noisy"},
                  {per_shot, noisy});
}

TEST(AngleGolden, ShardedReproducesPlainScoresBitForBitAllModes) {
    // Lane-count invariance under angle encoding, in EVERY exec mode —
    // including noisy, whose density backend lowers the ry_product prep.
    for (const core::exec_mode mode :
         {core::exec_mode::exact, core::exec_mode::sampled,
          core::exec_mode::per_shot, core::exec_mode::noisy}) {
        const bool cheap_mode = mode == core::exec_mode::exact ||
                                mode == core::exec_mode::sampled;
        const data::dataset d = angle_dataset(cheap_mode ? 24 : 12);
        const std::size_t groups = cheap_mode ? 4 : 2;
        const std::vector<double> reference =
            score_with(angle_config(mode, groups), d);
        for (const std::size_t shards : {1u, 2u, 3u}) {
            core::quorum_config config = angle_config(mode, groups);
            config.backend = "sharded";
            config.shards = shards;
            const std::vector<double> sharded = score_with(config, d);
            ASSERT_EQ(sharded.size(), reference.size());
            for (std::size_t i = 0; i < sharded.size(); ++i) {
                EXPECT_EQ(sharded[i], reference[i])
                    << core::exec_mode_name(mode) << " shards=" << shards
                    << " sample=" << i;
            }
        }
    }
}

#ifdef QUORUM_WORKER_BIN
TEST(AngleGolden, RemoteFleetReproducesPlainScoresBitForBit) {
    // A 2-worker remote fleet recompiles the wire-shipped programs —
    // including the v2 prep-style byte — and must land on the plain
    // backend's scores exactly, in the stochastic and the noisy mode.
    const char* old = std::getenv("QUORUM_WORKER");
    const std::string saved = old == nullptr ? "" : old;
    setenv("QUORUM_WORKER", QUORUM_WORKER_BIN, 1);
    for (const core::exec_mode mode :
         {core::exec_mode::sampled, core::exec_mode::noisy}) {
        const bool cheap_mode = mode == core::exec_mode::sampled;
        const data::dataset d = angle_dataset(cheap_mode ? 24 : 12);
        const std::size_t groups = cheap_mode ? 4 : 2;
        const std::vector<double> reference =
            score_with(angle_config(mode, groups), d);
        core::quorum_config config = angle_config(mode, groups);
        config.backend = "remote";
        config.shards = 2;
        const std::vector<double> remote = score_with(config, d);
        ASSERT_EQ(remote.size(), reference.size());
        for (std::size_t i = 0; i < remote.size(); ++i) {
            EXPECT_EQ(remote[i], reference[i])
                << core::exec_mode_name(mode) << " sample=" << i;
        }
    }
    if (old == nullptr) {
        unsetenv("QUORUM_WORKER");
    } else {
        setenv("QUORUM_WORKER", saved.c_str(), 1);
    }
}
#endif // QUORUM_WORKER_BIN

} // namespace
