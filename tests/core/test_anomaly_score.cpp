#include <gtest/gtest.h>

#include "util/contracts.h"

#include "core/anomaly_score.h"

namespace {

using namespace quorum::core;

group_result make_group(std::vector<double> z, std::size_t bucket_size) {
    group_result g;
    g.run_count.assign(z.size(), 2);
    g.abs_z_sum = std::move(z);
    g.bucket_size = bucket_size;
    return g;
}

TEST(AnomalyScore, AggregatesAcrossGroupsAsMeanAbsZ) {
    const std::vector<group_result> groups{
        make_group({1.0, 2.0, 3.0}, 5),
        make_group({0.5, 0.5, 0.5}, 5),
    };
    const score_report report = aggregate_groups(groups);
    EXPECT_EQ(report.groups, 2u);
    EXPECT_EQ(report.bucket_size, 5u);
    // Mean |z| per contributing run: 4 runs per sample across the groups.
    EXPECT_DOUBLE_EQ(report.scores[0], 1.5 / 4.0);
    EXPECT_DOUBLE_EQ(report.scores[2], 3.5 / 4.0);
    EXPECT_EQ(report.run_counts[1], 4u);
}

TEST(AnomalyScore, UnequalRunCountsDoNotUnderRankASample) {
    // Sample 0 deviates by |z| = 1.2 in each of its 2 contributing runs;
    // sample 1 deviates by only 0.9 per run but landed in signal-carrying
    // buckets 4 times. A raw sum would rank sample 1 (3.6) above sample 0
    // (2.4) purely because sample 0's other runs were sigma-floored; the
    // normalised score must rank the stronger per-run deviator first.
    group_result g;
    g.abs_z_sum = {2.4, 3.6};
    g.run_count = {2, 4};
    g.bucket_size = 4;
    const score_report report =
        aggregate_groups(std::vector<group_result>{g});
    EXPECT_DOUBLE_EQ(report.scores[0], 1.2);
    EXPECT_DOUBLE_EQ(report.scores[1], 0.9);
    EXPECT_EQ(report.ranking().front(), 0u);
}

TEST(AnomalyScore, ZeroRunCountScoresZero) {
    // A sample whose every (bucket, level) run was sigma-floored carries
    // no evidence: its score is 0, not NaN.
    group_result g;
    g.abs_z_sum = {0.0, 1.0};
    g.run_count = {0, 2};
    g.bucket_size = 2;
    const score_report report =
        aggregate_groups(std::vector<group_result>{g});
    EXPECT_EQ(report.scores[0], 0.0);
    EXPECT_DOUBLE_EQ(report.scores[1], 0.5);
}

TEST(AnomalyScore, EmptyGroupsRejected) {
    EXPECT_THROW((aggregate_groups({})), quorum::util::contract_error);
}

TEST(AnomalyScore, InconsistentSizesRejected) {
    const std::vector<group_result> groups{
        make_group({1.0, 2.0}, 5),
        make_group({1.0, 2.0, 3.0}, 5),
    };
    EXPECT_THROW(aggregate_groups(groups), quorum::util::contract_error);
}

TEST(AnomalyScore, RankingSortsDescending) {
    score_report report;
    report.scores = {0.2, 0.9, 0.5, 0.9};
    const auto ranking = report.ranking();
    EXPECT_EQ(ranking[0], 1u); // ties break by index
    EXPECT_EQ(ranking[1], 3u);
    EXPECT_EQ(ranking[2], 2u);
    EXPECT_EQ(ranking[3], 0u);
}

TEST(AnomalyScore, TopTruncates) {
    score_report report;
    report.scores = {3.0, 1.0, 2.0};
    EXPECT_EQ(report.top(2), (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(report.top(10).size(), 3u);
}

TEST(AnomalyScore, FlagTopMarksIndices) {
    score_report report;
    report.scores = {3.0, 1.0, 2.0, 0.5};
    const auto flags = report.flag_top(2);
    EXPECT_EQ(flags, (std::vector<int>{1, 0, 1, 0}));
}

} // namespace
