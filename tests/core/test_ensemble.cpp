#include <cmath>

#include <gtest/gtest.h>

#include "core/anomaly_score.h"
#include "core/ensemble.h"
#include "data/bucketing.h"
#include "data/generators.h"
#include "data/preprocess.h"
#include "util/rng.h"

namespace {

using namespace quorum::core;
using quorum::data::dataset;

dataset small_normalized_dataset(std::uint64_t seed) {
    quorum::util::rng gen(seed);
    quorum::data::generator_spec spec;
    spec.samples = 60;
    spec.anomalies = 4;
    spec.features = 10;
    spec.anomaly_shift = 0.35;
    const dataset raw = quorum::data::generate_clustered(spec, gen);
    return quorum::data::normalize_for_quorum(raw.without_labels());
}

TEST(Ensemble, DeterministicPerGroupIndex) {
    const dataset d = small_normalized_dataset(3);
    quorum_config config;
    config.ensemble_groups = 4;
    config.seed = 77;
    const group_result a = run_ensemble_group(d, config, 2);
    const group_result b = run_ensemble_group(d, config, 2);
    EXPECT_EQ(a.abs_z_sum, b.abs_z_sum);
    EXPECT_EQ(a.bucket_size, b.bucket_size);
}

TEST(Ensemble, DifferentGroupsDiffer) {
    const dataset d = small_normalized_dataset(5);
    quorum_config config;
    config.seed = 77;
    const group_result a = run_ensemble_group(d, config, 0);
    const group_result b = run_ensemble_group(d, config, 1);
    EXPECT_NE(a.abs_z_sum, b.abs_z_sum);
}

TEST(Ensemble, ScoresAreFiniteAndNonNegative) {
    const dataset d = small_normalized_dataset(7);
    quorum_config config;
    const group_result result = run_ensemble_group(d, config, 0);
    ASSERT_EQ(result.abs_z_sum.size(), d.num_samples());
    for (const double z : result.abs_z_sum) {
        EXPECT_TRUE(std::isfinite(z));
        EXPECT_GE(z, 0.0);
    }
}

TEST(Ensemble, RunCountsBoundedByBucketsTimesLevels) {
    const dataset d = small_normalized_dataset(9);
    quorum_config config;
    config.n_qubits = 3; // levels 1 and 2
    const group_result result = run_ensemble_group(d, config, 0);
    for (const std::size_t runs : result.run_count) {
        EXPECT_LE(runs, 2u); // one bucket membership per level
    }
}

TEST(Ensemble, BucketSizeMatchesSolver) {
    const dataset d = small_normalized_dataset(11);
    quorum_config config;
    config.estimated_anomaly_rate = 0.05;
    config.bucket_probability = 0.75;
    const group_result result = run_ensemble_group(d, config, 0);
    const auto expected_anomalies = static_cast<std::size_t>(
        std::ceil(0.05 * static_cast<double>(d.num_samples())));
    EXPECT_EQ(result.bucket_size,
              quorum::data::solve_bucket_size(d.num_samples(),
                                              expected_anomalies, 0.75));
}

TEST(Ensemble, FractionalAnomalyEstimatesRoundUpLikeFlagCount) {
    // §IV-C regression: bucket sizing and quorum_detector::flag_count
    // round estimated_anomaly_rate * n with ONE rule (ceil). Pin the
    // fractional cases on both sides of .5: rate*n = 2.4 and 2.5 both
    // plan for 3 anomalies.
    quorum::util::rng gen(23);
    quorum::data::generator_spec spec;
    spec.samples = 20;
    spec.anomalies = 2;
    spec.features = 8;
    const dataset d = quorum::data::normalize_for_quorum(
        quorum::data::generate_clustered(spec, gen).without_labels());
    for (const double rate : {0.12, 0.125}) { // 20 * rate = 2.4, 2.5
        quorum_config config;
        config.estimated_anomaly_rate = rate;
        const group_result result = run_ensemble_group(d, config, 0);
        EXPECT_EQ(result.bucket_size,
                  quorum::data::solve_bucket_size(20, 3,
                                                  config.bucket_probability))
            << "rate " << rate;
    }
}

TEST(Ensemble, SampledModeAddsShotNoiseOnly) {
    const dataset d = small_normalized_dataset(13);
    quorum_config exact_config;
    exact_config.mode = exec_mode::exact;
    quorum_config sampled_config;
    sampled_config.mode = exec_mode::sampled;
    sampled_config.shots = 1 << 16; // large: shot noise ~ 1/256
    const group_result exact = run_ensemble_group(d, exact_config, 0);
    const group_result sampled = run_ensemble_group(d, sampled_config, 0);
    // z-scores are scale-free, so direct comparison is meaningful; with
    // 65536 shots the per-sample deviation stays moderate.
    double max_delta = 0.0;
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        max_delta = std::max(
            max_delta, std::abs(exact.abs_z_sum[i] - sampled.abs_z_sum[i]));
    }
    EXPECT_LT(max_delta, 2.5);
}

TEST(Ensemble, FullCircuitPathMatchesAnalytic) {
    const dataset d = small_normalized_dataset(15);
    quorum_config analytic_config;
    analytic_config.mode = exec_mode::exact;
    analytic_config.use_full_circuit = false;
    quorum_config circuit_config = analytic_config;
    circuit_config.use_full_circuit = true;
    const group_result fast = run_ensemble_group(d, analytic_config, 0);
    const group_result full = run_ensemble_group(d, circuit_config, 0);
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        EXPECT_NEAR(fast.abs_z_sum[i], full.abs_z_sum[i], 1e-8);
    }
}

TEST(Ensemble, SingleCompressionLevelHalvesRuns) {
    const dataset d = small_normalized_dataset(17);
    quorum_config both;
    quorum_config single;
    single.compression_levels = {1};
    const group_result two_levels = run_ensemble_group(d, both, 0);
    const group_result one_level = run_ensemble_group(d, single, 0);
    std::size_t runs_two = 0;
    std::size_t runs_one = 0;
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        runs_two += two_levels.run_count[i];
        runs_one += one_level.run_count[i];
    }
    EXPECT_GT(runs_two, runs_one);
}

TEST(Ensemble, SigmaFlooredBucketsCannotBiasNormalizedScores) {
    // Three identical samples + one distinct one, bucket size 2: whichever
    // bucket pairs two of the duplicates has zero spread and is skipped by
    // the sigma floor, so run counts are UNEQUAL across samples. The
    // normalised aggregate (mean |z| per contributing run) must not
    // under-rank anyone for landing in the degenerate bucket.
    dataset d(4, 3);
    for (const std::size_t i : {0u, 1u, 2u}) {
        d.at(i, 0) = 0.2;
        d.at(i, 1) = 0.8;
        d.at(i, 2) = 0.5;
    }
    d.at(3, 0) = 0.9;
    d.at(3, 1) = 0.1;
    d.at(3, 2) = 0.3;
    const dataset normalized = quorum::data::normalize_for_quorum(d);

    quorum_config config;
    config.estimated_anomaly_rate = 0.5; // ceil(0.5 * 4) = 2 -> buckets of 2
    const group_result result = run_ensemble_group(normalized, config, 0);
    ASSERT_EQ(result.bucket_size, 2u);

    const std::size_t levels =
        config.effective_compression_levels().size();
    std::size_t floored = 0;
    std::size_t contributing = 0;
    for (const std::size_t runs : result.run_count) {
        if (runs == 0) {
            ++floored;
        } else {
            EXPECT_EQ(runs, levels);
            ++contributing;
        }
    }
    // The duplicate-duplicate bucket is floored at every level; the
    // mixed bucket contributes at every level.
    EXPECT_EQ(floored, 2u);
    EXPECT_EQ(contributing, 2u);

    const score_report report =
        aggregate_groups(std::vector<group_result>{result});
    for (std::size_t i = 0; i < 4; ++i) {
        if (result.run_count[i] == 0) {
            EXPECT_EQ(report.scores[i], 0.0) << i;
        } else {
            // In a two-element bucket both members sit exactly one
            // population-stddev from the mean, so the MEAN |z| is 1
            // regardless of how many runs were sigma-floored elsewhere —
            // the raw sum (abs_z_sum ~= levels) would instead scale with
            // the run count.
            EXPECT_NEAR(report.scores[i], 1.0, 1e-9) << i;
            EXPECT_NEAR(result.abs_z_sum[i],
                        static_cast<double>(levels), 1e-9)
                << i;
        }
    }
}

TEST(Ensemble, TinyDatasetStillWorks) {
    // Two samples: one bucket, both in it.
    dataset d(2, 3);
    d.at(0, 0) = 0.1;
    d.at(1, 0) = 0.3;
    const dataset normalized = quorum::data::normalize_for_quorum(d);
    quorum_config config;
    config.estimated_anomaly_rate = 0.4;
    const group_result result = run_ensemble_group(normalized, config, 0);
    EXPECT_EQ(result.abs_z_sum.size(), 2u);
}


TEST(Ensemble, TopVarianceStrategyIsDeterministicAcrossGroups) {
    const dataset d = small_normalized_dataset(19);
    quorum_config config;
    config.features = feature_strategy::top_variance;
    const group_result a = run_ensemble_group(d, config, 0);
    const group_result b = run_ensemble_group(d, config, 1);
    // Different groups still differ (angles/buckets change)...
    EXPECT_NE(a.abs_z_sum, b.abs_z_sum);
    // ...but scores stay finite and well-formed.
    for (const double z : a.abs_z_sum) {
        EXPECT_TRUE(std::isfinite(z));
    }
}

TEST(Ensemble, StrategiesDiverge) {
    const dataset d = small_normalized_dataset(21);
    quorum_config random_config;
    random_config.features = feature_strategy::uniform_random;
    quorum_config variance_config;
    variance_config.features = feature_strategy::top_variance;
    const group_result random_result = run_ensemble_group(d, random_config, 0);
    const group_result variance_result =
        run_ensemble_group(d, variance_config, 0);
    EXPECT_NE(random_result.abs_z_sum, variance_result.abs_z_sum);
}

} // namespace
