#include <cmath>

#include <gtest/gtest.h>

#include "core/ensemble.h"
#include "data/bucketing.h"
#include "data/generators.h"
#include "data/preprocess.h"
#include "util/rng.h"

namespace {

using namespace quorum::core;
using quorum::data::dataset;

dataset small_normalized_dataset(std::uint64_t seed) {
    quorum::util::rng gen(seed);
    quorum::data::generator_spec spec;
    spec.samples = 60;
    spec.anomalies = 4;
    spec.features = 10;
    spec.anomaly_shift = 0.35;
    const dataset raw = quorum::data::generate_clustered(spec, gen);
    return quorum::data::normalize_for_quorum(raw.without_labels());
}

TEST(Ensemble, DeterministicPerGroupIndex) {
    const dataset d = small_normalized_dataset(3);
    quorum_config config;
    config.ensemble_groups = 4;
    config.seed = 77;
    const group_result a = run_ensemble_group(d, config, 2);
    const group_result b = run_ensemble_group(d, config, 2);
    EXPECT_EQ(a.abs_z_sum, b.abs_z_sum);
    EXPECT_EQ(a.bucket_size, b.bucket_size);
}

TEST(Ensemble, DifferentGroupsDiffer) {
    const dataset d = small_normalized_dataset(5);
    quorum_config config;
    config.seed = 77;
    const group_result a = run_ensemble_group(d, config, 0);
    const group_result b = run_ensemble_group(d, config, 1);
    EXPECT_NE(a.abs_z_sum, b.abs_z_sum);
}

TEST(Ensemble, ScoresAreFiniteAndNonNegative) {
    const dataset d = small_normalized_dataset(7);
    quorum_config config;
    const group_result result = run_ensemble_group(d, config, 0);
    ASSERT_EQ(result.abs_z_sum.size(), d.num_samples());
    for (const double z : result.abs_z_sum) {
        EXPECT_TRUE(std::isfinite(z));
        EXPECT_GE(z, 0.0);
    }
}

TEST(Ensemble, RunCountsBoundedByBucketsTimesLevels) {
    const dataset d = small_normalized_dataset(9);
    quorum_config config;
    config.n_qubits = 3; // levels 1 and 2
    const group_result result = run_ensemble_group(d, config, 0);
    for (const std::size_t runs : result.run_count) {
        EXPECT_LE(runs, 2u); // one bucket membership per level
    }
}

TEST(Ensemble, BucketSizeMatchesSolver) {
    const dataset d = small_normalized_dataset(11);
    quorum_config config;
    config.estimated_anomaly_rate = 0.05;
    config.bucket_probability = 0.75;
    const group_result result = run_ensemble_group(d, config, 0);
    const auto expected_anomalies = static_cast<std::size_t>(
        std::lround(0.05 * static_cast<double>(d.num_samples())));
    EXPECT_EQ(result.bucket_size,
              quorum::data::solve_bucket_size(d.num_samples(),
                                              expected_anomalies, 0.75));
}

TEST(Ensemble, SampledModeAddsShotNoiseOnly) {
    const dataset d = small_normalized_dataset(13);
    quorum_config exact_config;
    exact_config.mode = exec_mode::exact;
    quorum_config sampled_config;
    sampled_config.mode = exec_mode::sampled;
    sampled_config.shots = 1 << 16; // large: shot noise ~ 1/256
    const group_result exact = run_ensemble_group(d, exact_config, 0);
    const group_result sampled = run_ensemble_group(d, sampled_config, 0);
    // z-scores are scale-free, so direct comparison is meaningful; with
    // 65536 shots the per-sample deviation stays moderate.
    double max_delta = 0.0;
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        max_delta = std::max(
            max_delta, std::abs(exact.abs_z_sum[i] - sampled.abs_z_sum[i]));
    }
    EXPECT_LT(max_delta, 2.5);
}

TEST(Ensemble, FullCircuitPathMatchesAnalytic) {
    const dataset d = small_normalized_dataset(15);
    quorum_config analytic_config;
    analytic_config.mode = exec_mode::exact;
    analytic_config.use_full_circuit = false;
    quorum_config circuit_config = analytic_config;
    circuit_config.use_full_circuit = true;
    const group_result fast = run_ensemble_group(d, analytic_config, 0);
    const group_result full = run_ensemble_group(d, circuit_config, 0);
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        EXPECT_NEAR(fast.abs_z_sum[i], full.abs_z_sum[i], 1e-8);
    }
}

TEST(Ensemble, SingleCompressionLevelHalvesRuns) {
    const dataset d = small_normalized_dataset(17);
    quorum_config both;
    quorum_config single;
    single.compression_levels = {1};
    const group_result two_levels = run_ensemble_group(d, both, 0);
    const group_result one_level = run_ensemble_group(d, single, 0);
    std::size_t runs_two = 0;
    std::size_t runs_one = 0;
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        runs_two += two_levels.run_count[i];
        runs_one += one_level.run_count[i];
    }
    EXPECT_GT(runs_two, runs_one);
}

TEST(Ensemble, TinyDatasetStillWorks) {
    // Two samples: one bucket, both in it.
    dataset d(2, 3);
    d.at(0, 0) = 0.1;
    d.at(1, 0) = 0.3;
    const dataset normalized = quorum::data::normalize_for_quorum(d);
    quorum_config config;
    config.estimated_anomaly_rate = 0.4;
    const group_result result = run_ensemble_group(normalized, config, 0);
    EXPECT_EQ(result.abs_z_sum.size(), 2u);
}


TEST(Ensemble, TopVarianceStrategyIsDeterministicAcrossGroups) {
    const dataset d = small_normalized_dataset(19);
    quorum_config config;
    config.features = feature_strategy::top_variance;
    const group_result a = run_ensemble_group(d, config, 0);
    const group_result b = run_ensemble_group(d, config, 1);
    // Different groups still differ (angles/buckets change)...
    EXPECT_NE(a.abs_z_sum, b.abs_z_sum);
    // ...but scores stay finite and well-formed.
    for (const double z : a.abs_z_sum) {
        EXPECT_TRUE(std::isfinite(z));
    }
}

TEST(Ensemble, StrategiesDiverge) {
    const dataset d = small_normalized_dataset(21);
    quorum_config random_config;
    random_config.features = feature_strategy::uniform_random;
    quorum_config variance_config;
    variance_config.features = feature_strategy::top_variance;
    const group_result random_result = run_ensemble_group(d, random_config, 0);
    const group_result variance_result =
        run_ensemble_group(d, variance_config, 0);
    EXPECT_NE(random_result.abs_z_sum, variance_result.abs_z_sum);
}

} // namespace
