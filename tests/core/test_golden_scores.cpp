// Golden score fixtures: a committed CSV of flagship-workload anomaly
// scores, recomputed and diffed bit-for-bit on every run. Engine work
// (new backends, fusion, sharding, transpile caches) cannot silently
// drift Quorum's numbers past this test — any intentional change must
// regenerate the fixtures and show up in review as a CSV diff.
//
// Regenerate with:  QUORUM_REGEN_FIXTURES=1 ctest -R GoldenScores
//
// Platform scope: bit-exactness is guaranteed across thread counts,
// shard counts, backends and build types on ONE platform, not across
// libm implementations — gate angles pass through sin/cos, whose
// last-ulp results may differ on non-glibc/x86-64 hosts (the committed
// fixtures come from the CI platform). On such a host, regenerate
// locally or set QUORUM_SKIP_GOLDEN_FIXTURES=1; a failure on the CI
// platform itself is a real engine drift.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quorum.h"
#include "data/generators.h"
#include "util/rng.h"

namespace {

using namespace quorum;

/// A miniature Fig. 8 flagship workload: clustered data with planted
/// anomalies, scored at the paper's primary configuration (3 qubits,
/// 2 ansatz layers, levels {1,2}) with enough groups to exercise every
/// bucket path but finish in well under a second per mode.
data::dataset flagship_dataset(std::size_t samples) {
    util::rng gen(2025);
    data::generator_spec spec;
    spec.samples = samples;
    spec.anomalies = std::max<std::size_t>(1, samples / 16);
    spec.features = 12;
    spec.anomaly_shift = 0.3;
    return data::generate_clustered(spec, gen);
}

core::quorum_config flagship_config(core::exec_mode mode,
                                    std::size_t groups) {
    core::quorum_config config;
    config.ensemble_groups = groups;
    config.mode = mode;
    config.shots = mode == core::exec_mode::noisy ? 256 : 4096;
    config.seed = 2025;
    return config;
}

std::vector<double> score_with(const core::quorum_config& config,
                               const data::dataset& d) {
    const core::quorum_detector detector(config);
    return detector.score(d).scores;
}

/// 17 significant digits: the shortest decimal form that round-trips
/// every IEEE-754 double exactly, so CSV equality == bit equality.
std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string fixture_path(const std::string& name) {
    return std::string(QUORUM_TEST_FIXTURE_DIR) + "/" + name;
}

bool env_flag(const char* name) {
    const char* raw = std::getenv(name);
    return raw != nullptr && raw[0] != '\0' && raw[0] != '0';
}

bool regen_requested() { return env_flag("QUORUM_REGEN_FIXTURES"); }

void write_fixture(const std::string& path,
                   const std::vector<std::string>& columns,
                   const std::vector<std::vector<double>>& series) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "sample";
    for (const std::string& column : columns) {
        out << "," << column;
    }
    out << "\n";
    for (std::size_t i = 0; i < series[0].size(); ++i) {
        out << i;
        for (const std::vector<double>& values : series) {
            out << "," << format_double(values[i]);
        }
        out << "\n";
    }
}

void compare_fixture(const std::string& path,
                     const std::vector<std::string>& columns,
                     const std::vector<std::vector<double>>& series) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " is missing — regenerate the golden fixtures with "
        << "QUORUM_REGEN_FIXTURES=1 and commit the result";
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    std::string expected_header = "sample";
    for (const std::string& column : columns) {
        expected_header += "," + column;
    }
    EXPECT_EQ(line, expected_header);

    std::size_t row = 0;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        ASSERT_LT(row, series[0].size()) << "fixture has extra rows";
        std::stringstream cells(line);
        std::string cell;
        ASSERT_TRUE(static_cast<bool>(std::getline(cells, cell, ',')));
        EXPECT_EQ(std::stoul(cell), row);
        for (std::size_t c = 0; c < series.size(); ++c) {
            ASSERT_TRUE(static_cast<bool>(std::getline(cells, cell, ',')))
                << "row " << row << " is missing column " << columns[c];
            // Bit-identical scores: %.17g round-trips doubles exactly, so
            // strict equality here means equality to the last bit.
            EXPECT_EQ(std::stod(cell), series[c][row])
                << columns[c] << " drifted at sample " << row
                << " (engine change? regenerate fixtures deliberately "
                << "with QUORUM_REGEN_FIXTURES=1)";
        }
        ++row;
    }
    EXPECT_EQ(row, series[0].size()) << "fixture is missing rows";
}

void check_fixture(const std::string& name,
                   const std::vector<std::string>& columns,
                   const std::vector<std::vector<double>>& series) {
    const std::string path = fixture_path(name);
    if (regen_requested()) {
        write_fixture(path, columns, series);
    }
    compare_fixture(path, columns, series);
}

TEST(GoldenScores, FlagshipExactAndSampledScoresMatchFixture) {
    if (env_flag("QUORUM_SKIP_GOLDEN_FIXTURES")) {
        GTEST_SKIP() << "golden fixtures skipped (non-CI platform)";
    }
    const data::dataset d = flagship_dataset(48);
    const std::vector<double> exact =
        score_with(flagship_config(core::exec_mode::exact, 6), d);
    const std::vector<double> sampled =
        score_with(flagship_config(core::exec_mode::sampled, 6), d);
    check_fixture("flagship_scores.csv", {"exact", "sampled"},
                  {exact, sampled});
}

TEST(GoldenScores, FlagshipNoisyScoresMatchFixture) {
    if (env_flag("QUORUM_SKIP_GOLDEN_FIXTURES")) {
        GTEST_SKIP() << "golden fixtures skipped (non-CI platform)";
    }
    const data::dataset d = flagship_dataset(12);
    const std::vector<double> noisy =
        score_with(flagship_config(core::exec_mode::noisy, 2), d);
    check_fixture("flagship_noisy_scores.csv", {"noisy"}, {noisy});
}

#ifdef QUORUM_WORKER_BIN
TEST(GoldenScores, RemoteDetectorReproducesPlainScoresBitForBit) {
    // End-to-end worker-count invariance: the full detector run through
    // the REMOTE backend — compiled programs, spans and rng snapshots
    // serialised to real quorum_worker processes — lands on the same
    // scores as the plain backend, bit for bit.
    const char* old = std::getenv("QUORUM_WORKER");
    const std::string saved = old == nullptr ? "" : old;
    setenv("QUORUM_WORKER", QUORUM_WORKER_BIN, 1);
    const data::dataset d = flagship_dataset(48);
    const std::vector<double> reference =
        score_with(flagship_config(core::exec_mode::sampled, 4), d);
    core::quorum_config config =
        flagship_config(core::exec_mode::sampled, 4);
    config.backend = "remote:statevector";
    config.shards = 2;
    const std::vector<double> remote = score_with(config, d);
    ASSERT_EQ(remote.size(), reference.size());
    for (std::size_t i = 0; i < remote.size(); ++i) {
        EXPECT_EQ(remote[i], reference[i]) << "sample=" << i;
    }
    if (old == nullptr) {
        unsetenv("QUORUM_WORKER");
    } else {
        setenv("QUORUM_WORKER", saved.c_str(), 1);
    }
}
#endif // QUORUM_WORKER_BIN

TEST(GoldenScores, ShardedDetectorReproducesPlainScoresBitForBit) {
    // End-to-end shard invariance: the full detector run through the
    // sharded backend lands on the SAME scores as the plain backend (the
    // ones the fixture above pins), for several shard counts.
    const data::dataset d = flagship_dataset(48);
    const std::vector<double> reference =
        score_with(flagship_config(core::exec_mode::sampled, 6), d);
    for (const std::size_t shards : {2u, 3u}) {
        core::quorum_config config =
            flagship_config(core::exec_mode::sampled, 6);
        config.backend = "sharded:statevector";
        config.shards = shards;
        const std::vector<double> sharded = score_with(config, d);
        ASSERT_EQ(sharded.size(), reference.size());
        for (std::size_t i = 0; i < sharded.size(); ++i) {
            EXPECT_EQ(sharded[i], reference[i])
                << "shards=" << shards << " sample=" << i;
        }
    }
}

} // namespace
