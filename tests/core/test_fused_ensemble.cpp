// Core-level fused-evaluation contract: run_ensemble_group with
// config.fused_levels (one run_batch_levels call per bucket) produces
// scores EQUAL (IEEE ==, identical at 17 significant digits) to the
// per-level path (--no-fused) in all four execution modes on every
// registered backend combination. This suite ran green BEFORE the
// run-count-normalization fixture regeneration, so the regenerated golden
// numbers were produced by an evaluation path already proven equivalent.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quorum.h"
#include "data/generators.h"
#include "data/preprocess.h"
#include "util/rng.h"

namespace {

using namespace quorum;
using core::exec_mode;
using core::group_result;
using core::quorum_config;

data::dataset small_normalized_dataset(std::uint64_t seed,
                                       std::size_t samples) {
    util::rng gen(seed);
    data::generator_spec spec;
    spec.samples = samples;
    spec.anomalies = 2;
    spec.features = 10;
    spec.anomaly_shift = 0.35;
    const data::dataset raw = data::generate_clustered(spec, gen);
    return data::normalize_for_quorum(raw.without_labels());
}

void expect_fused_equals_per_level(const quorum_config& fused_config,
                                   const data::dataset& d,
                                   const std::string& label) {
    quorum_config per_level_config = fused_config;
    per_level_config.fused_levels = false;
    for (std::size_t group = 0; group < 2; ++group) {
        const group_result fused =
            core::run_ensemble_group(d, fused_config, group);
        const group_result per_level =
            core::run_ensemble_group(d, per_level_config, group);
        ASSERT_EQ(fused.abs_z_sum.size(), per_level.abs_z_sum.size());
        for (std::size_t i = 0; i < fused.abs_z_sum.size(); ++i) {
            EXPECT_EQ(fused.abs_z_sum[i], per_level.abs_z_sum[i])
                << label << " group " << group << " sample " << i;
        }
        EXPECT_EQ(fused.run_count, per_level.run_count) << label;
        EXPECT_EQ(fused.bucket_size, per_level.bucket_size) << label;
    }
}

quorum_config mode_config(exec_mode mode, const std::string& backend,
                          std::size_t shards = 0) {
    quorum_config config;
    config.mode = mode;
    config.shots = mode == exec_mode::per_shot  ? 24
                   : mode == exec_mode::noisy   ? 128
                   : mode == exec_mode::sampled ? 512
                                                : 0;
    config.backend = backend;
    config.shards = shards;
    config.seed = 314;
    return config;
}

TEST(FusedEnsemble, ExactModeEveryBackend) {
    const data::dataset d = small_normalized_dataset(51, 24);
    for (const char* backend : {"statevector", "density"}) {
        expect_fused_equals_per_level(
            mode_config(exec_mode::exact, backend), d, backend);
    }
    for (const std::size_t shards : {1u, 2u, 3u}) {
        expect_fused_equals_per_level(
            mode_config(exec_mode::exact, "sharded:statevector", shards), d,
            "sharded@" + std::to_string(shards));
    }
}

TEST(FusedEnsemble, ExactModeFullCircuit) {
    const data::dataset d = small_normalized_dataset(53, 16);
    quorum_config config = mode_config(exec_mode::exact, "statevector");
    config.use_full_circuit = true;
    expect_fused_equals_per_level(config, d, "full-circuit");
}

TEST(FusedEnsemble, SampledModeEveryBackend) {
    const data::dataset d = small_normalized_dataset(55, 24);
    expect_fused_equals_per_level(
        mode_config(exec_mode::sampled, "statevector"), d, "statevector");
    for (const std::size_t shards : {1u, 2u, 3u}) {
        expect_fused_equals_per_level(
            mode_config(exec_mode::sampled, "sharded:statevector", shards),
            d, "sharded@" + std::to_string(shards));
    }
}

TEST(FusedEnsemble, PerShotMode) {
    const data::dataset d = small_normalized_dataset(57, 12);
    expect_fused_equals_per_level(
        mode_config(exec_mode::per_shot, "statevector"), d, "statevector");
    expect_fused_equals_per_level(
        mode_config(exec_mode::per_shot, "sharded:statevector", 2), d,
        "sharded@2");
}

TEST(FusedEnsemble, NoisyMode) {
    const data::dataset d = small_normalized_dataset(59, 10);
    expect_fused_equals_per_level(mode_config(exec_mode::noisy, "density"),
                                  d, "density");
    expect_fused_equals_per_level(
        mode_config(exec_mode::noisy, "sharded:density", 2), d,
        "sharded:density@2");
}

TEST(FusedEnsemble, DetectorScoresIdenticalEitherPath) {
    // End to end through quorum_detector: fused and per-level land on the
    // same final report.
    util::rng gen(61);
    data::generator_spec spec;
    spec.samples = 30;
    spec.anomalies = 2;
    spec.features = 9;
    const data::dataset d = data::generate_clustered(spec, gen);

    quorum_config config;
    config.ensemble_groups = 4;
    config.mode = exec_mode::sampled;
    config.shots = 512;
    config.seed = 7;
    const core::score_report fused = core::quorum_detector(config).score(d);
    config.fused_levels = false;
    const core::score_report per_level =
        core::quorum_detector(config).score(d);
    EXPECT_EQ(fused.scores, per_level.scores);
    EXPECT_EQ(fused.run_counts, per_level.run_counts);
}

} // namespace
