// Engine-equivalence suite (the batched-execution refactor's contract):
// for fixed seeds, exact-mode scores from the compiled/batched engine
// match the pre-refactor per-sample path (reimplemented here, with the
// same ceil bucket sizing), and the stochastic modes stay deterministic
// for any thread count via their per-sample rng streams.
//
// Since the SWAP-test short-circuit landed, the engine computes each
// overlap as <D†psi|phi_b> instead of <psi|D phi_b> — mathematically the
// same number, associated differently — so the comparison here is
// tight-tolerance, not bitwise. The bitwise contracts are carried by the
// golden fixtures (test_golden_scores.cpp) and the fused-vs-per-level
// suite (tests/exec/test_fused_levels.cpp).
#include <cmath>

#include <gtest/gtest.h>

#include "core/quorum.h"
#include "data/bucketing.h"
#include "data/feature_select.h"
#include "data/generators.h"
#include "data/preprocess.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qsim/statevector_runner.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace quorum;
using core::exec_mode;
using core::group_result;
using core::quorum_config;
using data::dataset;

dataset small_normalized_dataset(std::uint64_t seed, std::size_t samples) {
    util::rng gen(seed);
    data::generator_spec spec;
    spec.samples = samples;
    spec.anomalies = 3;
    spec.features = 10;
    spec.anomaly_shift = 0.35;
    const dataset raw = data::generate_clustered(spec, gen);
    return data::normalize_for_quorum(raw.without_labels());
}

/// The pre-refactor evaluation: rebuild the whole circuit per sample and
/// run it through the simulator directly (exact mode only).
double legacy_evaluate_sample(std::span<const double> amplitudes,
                              const qml::ansatz_params& params,
                              std::size_t compression,
                              const quorum_config& config) {
    if (config.use_full_circuit) {
        const qsim::circuit c =
            qml::build_autoencoder_circuit(amplitudes, params, compression);
        const qsim::exact_run_result result =
            qsim::statevector_runner::run_exact(c);
        return result.cbit_probability_one(qml::swap_result_cbit);
    }
    return qml::analytic_swap_p1(amplitudes, params, compression);
}

/// The pre-refactor ensemble group, kept verbatim as the golden reference
/// for the batched engine (exact mode; the RNG preamble mirrors
/// core::run_ensemble_group exactly).
group_result legacy_run_ensemble_group(const dataset& normalized,
                                       const quorum_config& config,
                                       std::size_t group_index) {
    const std::size_t n_samples = normalized.num_samples();
    util::rng gen(util::derive_seed(config.seed, group_index));

    group_result result;
    result.abs_z_sum.assign(n_samples, 0.0);
    result.run_count.assign(n_samples, 0);

    const auto estimated_anomalies = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               config.estimated_anomaly_rate *
               static_cast<double>(n_samples))));
    result.bucket_size = data::solve_bucket_size(
        n_samples, estimated_anomalies, config.bucket_probability);
    const std::vector<std::vector<std::size_t>> buckets =
        data::make_buckets(n_samples, result.bucket_size, gen);

    const std::vector<std::size_t> features = data::select_features(
        normalized.num_features(), qml::max_features(config.n_qubits), gen);
    const qml::ansatz_params params =
        qml::random_ansatz_params(config.n_qubits, config.ansatz_layers, gen);

    std::vector<std::vector<double>> amplitudes(n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) {
        const std::vector<double> selected =
            data::gather_features(normalized.row(i), features);
        amplitudes[i] = qml::to_amplitudes(selected, config.n_qubits);
    }

    std::vector<double> p_values(n_samples, 0.0);
    for (const std::size_t level : config.effective_compression_levels()) {
        for (std::size_t i = 0; i < n_samples; ++i) {
            p_values[i] =
                legacy_evaluate_sample(amplitudes[i], params, level, config);
        }
        for (const std::vector<std::size_t>& bucket : buckets) {
            util::welford_accumulator acc;
            for (const std::size_t i : bucket) {
                acc.add(p_values[i]);
            }
            const double mu = acc.mean();
            const double sigma = acc.stddev_population();
            if (sigma < 1e-9) {
                continue;
            }
            for (const std::size_t i : bucket) {
                result.abs_z_sum[i] += std::abs((p_values[i] - mu) / sigma);
                ++result.run_count[i];
            }
        }
    }
    return result;
}

TEST(EngineEquivalence, ExactGroupScoresMatchLegacyPath) {
    const dataset d = small_normalized_dataset(31, 40);
    quorum_config config;
    config.seed = 4242;
    for (std::size_t group = 0; group < 3; ++group) {
        const group_result legacy =
            legacy_run_ensemble_group(d, config, group);
        const group_result engine = core::run_ensemble_group(d, config, group);
        ASSERT_EQ(engine.abs_z_sum.size(), legacy.abs_z_sum.size());
        for (std::size_t i = 0; i < legacy.abs_z_sum.size(); ++i) {
            EXPECT_NEAR(engine.abs_z_sum[i], legacy.abs_z_sum[i], 1e-6)
                << "group " << group << " sample " << i;
        }
        EXPECT_EQ(engine.run_count, legacy.run_count);
        EXPECT_EQ(engine.bucket_size, legacy.bucket_size);
    }
}

TEST(EngineEquivalence, ExactFullCircuitGroupScoresAreBitIdentical) {
    const dataset d = small_normalized_dataset(33, 24);
    quorum_config config;
    config.seed = 97;
    config.use_full_circuit = true;
    const group_result legacy = legacy_run_ensemble_group(d, config, 1);
    const group_result engine = core::run_ensemble_group(d, config, 1);
    for (std::size_t i = 0; i < legacy.abs_z_sum.size(); ++i) {
        EXPECT_EQ(engine.abs_z_sum[i], legacy.abs_z_sum[i]) << i;
    }
}

TEST(EngineEquivalence, DetectorScoresMatchLegacyAggregate) {
    const dataset raw = [] {
        util::rng gen(35);
        data::generator_spec spec;
        spec.samples = 30;
        spec.anomalies = 2;
        spec.features = 9;
        return data::generate_clustered(spec, gen);
    }();
    quorum_config config;
    config.ensemble_groups = 5;
    config.seed = 11;
    const dataset normalized =
        data::normalize_for_quorum(raw.without_labels());
    std::vector<group_result> groups;
    groups.reserve(config.ensemble_groups);
    for (std::size_t g = 0; g < config.ensemble_groups; ++g) {
        groups.push_back(legacy_run_ensemble_group(normalized, config, g));
    }
    const core::score_report legacy = core::aggregate_groups(groups);
    const core::quorum_detector detector(config);
    const core::score_report engine = detector.score(raw);
    ASSERT_EQ(engine.scores.size(), legacy.scores.size());
    for (std::size_t i = 0; i < legacy.scores.size(); ++i) {
        EXPECT_NEAR(engine.scores[i], legacy.scores[i], 1e-6) << i;
    }
    EXPECT_EQ(engine.run_counts, legacy.run_counts);
}

TEST(EngineEquivalence, ExplicitStatevectorBackendMatchesAuto) {
    const dataset d = small_normalized_dataset(37, 24);
    quorum_config auto_config;
    auto_config.seed = 5;
    quorum_config named_config = auto_config;
    named_config.backend = "statevector";
    const group_result a = core::run_ensemble_group(d, auto_config, 0);
    const group_result b = core::run_ensemble_group(d, named_config, 0);
    EXPECT_EQ(a.abs_z_sum, b.abs_z_sum);
}

class StochasticModeThreads : public ::testing::TestWithParam<exec_mode> {};

TEST_P(StochasticModeThreads, ScoresAreDeterministicAcrossThreadCounts) {
    util::rng gen(39);
    data::generator_spec spec;
    spec.samples = 24;
    spec.anomalies = 2;
    spec.features = 8;
    const dataset d = data::generate_clustered(spec, gen);

    quorum_config config;
    config.ensemble_groups = 6;
    config.mode = GetParam();
    config.shots = GetParam() == exec_mode::per_shot ? 32 : 256;
    config.seed = 2024;
    config.threads = 1;
    const core::score_report serial =
        core::quorum_detector(config).score(d);
    for (const std::size_t threads : {2u, 4u}) {
        config.threads = threads;
        const core::score_report parallel =
            core::quorum_detector(config).score(d);
        ASSERT_EQ(parallel.scores.size(), serial.scores.size());
        for (std::size_t i = 0; i < serial.scores.size(); ++i) {
            ASSERT_EQ(parallel.scores[i], serial.scores[i])
                << "threads=" << threads << " sample=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, StochasticModeThreads,
                         ::testing::Values(exec_mode::sampled,
                                           exec_mode::per_shot));

TEST(EngineEquivalence, DensityBackendServesExactModeViaFullCircuit) {
    // Forcing the density backend for exact mode must fall back to the
    // full SWAP-test circuit (the density engine cannot evaluate the
    // register-A overlap shortcut) and agree with the state-vector path.
    const dataset d = small_normalized_dataset(41, 12);
    quorum_config sv_config;
    sv_config.compression_levels = {1};
    quorum_config density_config = sv_config;
    density_config.backend = "density";
    const group_result sv = core::run_ensemble_group(d, sv_config, 0);
    const group_result density =
        core::run_ensemble_group(d, density_config, 0);
    ASSERT_EQ(density.abs_z_sum.size(), sv.abs_z_sum.size());
    for (std::size_t i = 0; i < sv.abs_z_sum.size(); ++i) {
        EXPECT_NEAR(density.abs_z_sum[i], sv.abs_z_sum[i], 1e-6) << i;
    }
}

TEST(EngineEquivalence, UnknownBackendIsRejectedAtValidation) {
    quorum_config config;
    config.backend = "warp-drive";
    EXPECT_THROW((core::quorum_detector{config}),
                 quorum::util::contract_error);
}

TEST(EngineEquivalence, IncompatibleModeBackendPairIsRejectedAtValidation) {
    // per_shot has no density-engine semantics; the combination must fail
    // at construction, not mid-scoring in a worker thread.
    quorum_config config;
    config.mode = exec_mode::per_shot;
    config.shots = 8;
    config.backend = "density";
    EXPECT_THROW((core::quorum_detector{config}),
                 quorum::util::contract_error);
}

} // namespace
