// Paper-claim integration tests: each test pins one evaluation-level
// behaviour of the full pipeline (the benches print them; these assert
// them, at reduced scale, so regressions fail CI rather than just
// changing a table).
#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "baseline/qnn.h"
#include "baseline/trained_qae.h"
#include "core/quorum.h"
#include "data/generators.h"
#include "data/split.h"
#include "metrics/confusion.h"
#include "metrics/detection_curve.h"
#include "metrics/roc.h"
#include "util/rng.h"

namespace {

using namespace quorum;

core::quorum_config suite_config(double bucket_probability, double rate) {
    core::quorum_config config;
    config.ensemble_groups = 120;
    config.mode = core::exec_mode::sampled;
    config.shots = 4096;
    config.bucket_probability = bucket_probability;
    config.estimated_anomaly_rate = rate;
    config.seed = 2025;
    return config;
}

TEST(PaperClaims, QuorumBeatsRandomOnEveryTableOneDataset) {
    const auto suite = data::make_benchmark_suite(2025);
    for (const auto& bench_ds : suite) {
        const auto& d = bench_ds.data;
        const double rate = static_cast<double>(d.num_anomalies()) /
                            static_cast<double>(d.num_samples());
        core::quorum_config config =
            suite_config(bench_ds.bucket_probability, rate);
        config.ensemble_groups = 250;
        core::quorum_detector detector(config);
        const core::score_report report = detector.score(d);
        const double auc = metrics::roc_auc(d.labels(), report.scores);
        EXPECT_GT(auc, 0.55) << bench_ds.name; // clearly above random
    }
}

TEST(PaperClaims, SeparabilityOrderingMatchesFig9) {
    // Breast cancer and power plant must be the two most separable
    // datasets; letter the least (paper Fig. 9's hierarchy).
    const auto suite = data::make_benchmark_suite(2025);
    double auc[4] = {0, 0, 0, 0};
    for (std::size_t k = 0; k < suite.size(); ++k) {
        const auto& d = suite[k].data;
        const double rate = static_cast<double>(d.num_anomalies()) /
                            static_cast<double>(d.num_samples());
        core::quorum_detector detector(
            suite_config(suite[k].bucket_probability, rate));
        auc[k] = metrics::roc_auc(d.labels(), detector.score(d).scores);
    }
    // order: 0 breast, 1 pen, 2 letter, 3 power.
    EXPECT_GT(auc[0], auc[1]); // breast > pen
    EXPECT_GT(auc[0], auc[2]); // breast > letter
    EXPECT_GT(auc[3], auc[1]); // power > pen
    EXPECT_GT(auc[3], auc[2]); // power > letter
    EXPECT_GT(auc[1], auc[2] - 0.05); // pen >= letter (small slack)
}

TEST(PaperClaims, QuorumRecallBeatsQnnOnEveryDataset) {
    // Fig. 8's most robust signature: the supervised QNN is conservative,
    // Quorum's recall wins everywhere.
    const auto suite = data::make_benchmark_suite(2025);
    for (const auto& bench_ds : suite) {
        const auto& d = bench_ds.data;
        const double rate = static_cast<double>(d.num_anomalies()) /
                            static_cast<double>(d.num_samples());
        core::quorum_config config =
            suite_config(bench_ds.bucket_probability, rate);
        config.ensemble_groups = 300;
        core::quorum_detector detector(config);
        const core::score_report report = detector.score(d);
        const auto flag_count = static_cast<std::size_t>(
            std::ceil(1.25 * static_cast<double>(d.num_anomalies())));
        const double quorum_recall =
            metrics::evaluate_top_k(d.labels(), report.scores, flag_count)
                .recall();

        baseline::qnn_config qnn_config;
        qnn_config.epochs = 8;
        qnn_config.seed = 2025;
        baseline::qnn_classifier qnn(qnn_config);
        qnn.fit(d);
        const double qnn_recall =
            metrics::evaluate_flags(d.labels(), qnn.predict(d)).recall();

        EXPECT_GE(quorum_recall, qnn_recall) << bench_ds.name;
    }
}

TEST(PaperClaims, QnnDetectsNothingOnLetter) {
    // Fig. 8 note: "the QNN did not detect any anomalies for the letter
    // dataset" — the 0.5-threshold supervised model stays silent.
    quorum::util::rng gen(2025);
    quorum::util::rng g2 = gen.child(2);
    const data::dataset letter = data::make_letter(g2);
    baseline::qnn_config config;
    config.epochs = 12; // the Fig. 8 configuration
    config.seed = 2025;
    baseline::qnn_classifier qnn(config);
    qnn.fit(letter);
    const auto counts =
        metrics::evaluate_flags(letter.labels(), qnn.predict(letter));
    EXPECT_EQ(counts.f1(), 0.0);
}

TEST(PaperClaims, NoisyBackendPreservesRankingSignal) {
    // Fig. 9's noise-resilience claim at test scale: with clearly planted
    // anomalies, Brisbane-median noise keeps the ranking well above
    // random. (The benches measure the subtler Table-I datasets; a test
    // needs a high-SNR workload to stay cheap and stable.)
    quorum::util::rng gen(2025);
    data::generator_spec spec;
    spec.samples = 60;
    spec.anomalies = 4;
    spec.features = 7;
    spec.anomaly_shift = 0.45;
    spec.anomaly_feature_fraction = 0.7;
    const data::dataset d = data::generate_clustered(spec, gen);
    core::quorum_config config = suite_config(0.75, 4.0 / 60.0);
    config.ensemble_groups = 25;
    config.mode = core::exec_mode::noisy;
    core::quorum_detector detector(config);
    const core::score_report report = detector.score(d);
    EXPECT_GT(metrics::roc_auc(d.labels(), report.scores), 0.7);
}

TEST(PaperClaims, MoreEnsemblesNeverHurtMuch) {
    // §V: ensemble growth improves results with diminishing returns; at
    // minimum, 150 groups must not be materially worse than 30.
    quorum::util::rng gen(2025);
    quorum::util::rng g0 = gen.child(0);
    const data::dataset d = data::make_breast_cancer(g0);
    double auc_small = 0.0;
    double auc_large = 0.0;
    for (const std::size_t groups : {30u, 150u}) {
        core::quorum_config config = suite_config(0.75, 10.0 / 367.0);
        config.ensemble_groups = groups;
        core::quorum_detector detector(config);
        const double auc =
            metrics::roc_auc(d.labels(), detector.score(d).scores);
        (groups == 30 ? auc_small : auc_large) = auc;
    }
    EXPECT_GT(auc_large, auc_small - 0.05);
}

TEST(PaperClaims, TrainedQaeNeedsOrdersOfMagnitudeMoreCircuits) {
    // The zero-training pitch, quantified: scoring N samples with G groups
    // and L levels costs Quorum N*G*L circuit evaluations with NO training;
    // the trained QAE pays a comparable number of circuits BEFORE it can
    // score anything.
    quorum::util::rng gen(3);
    data::generator_spec spec;
    spec.samples = 60;
    spec.anomalies = 3;
    spec.features = 7;
    const data::dataset d = data::generate_clustered(spec, gen);

    baseline::trained_qae_config config;
    config.epochs = 4;
    baseline::trained_qae qae(config);
    qae.fit(d.without_labels());
    // 4 epochs * 60 samples * 2 * 12 params = 5760 gradient circuits.
    EXPECT_GE(qae.training_circuit_evaluations(), 5000u);
}

TEST(PaperClaims, QnnGeneralisesFromStratifiedSplit) {
    // Train-on-split / test-on-rest protocol via data::stratified_split:
    // the supervised baseline must transfer its precision to held-out rows.
    quorum::util::rng gen(2025);
    quorum::util::rng g3 = gen.child(3);
    const data::dataset plant = data::make_power_plant(g3);
    quorum::util::rng split_gen(5);
    const data::split_result split =
        data::stratified_split(plant, 0.5, split_gen);
    baseline::qnn_config config;
    config.epochs = 8;
    config.seed = 2025;
    baseline::qnn_classifier qnn(config);
    qnn.fit(split.train);
    const auto counts =
        metrics::evaluate_flags(split.test.labels(), qnn.predict(split.test));
    if (counts.true_positive + counts.false_positive > 0) {
        EXPECT_GT(counts.precision(), 0.8);
    } else {
        SUCCEED() << "QNN stayed silent on held-out data (conservative)";
    }
}

} // namespace
