// Serve-path golden suite: the flagship workload scored THROUGH a real
// `quorum_serve` daemon and its TCP worker fleet must be IEEE == to the
// in-process detector — against the committed golden fixtures, for
// workers {1, 2, 4} in all four modes, under concurrent clients, under
// worker churn (SIGKILL mid-service), and across client disconnects.
//
// Every test here spawns the real build-tree binaries (QUORUM_SERVE_BIN /
// QUORUM_WORKER_BIN): this is the end-to-end leg of the determinism
// contract, not a protocol unit test (those live in tests/exec/).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/quorum.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "exec/serve_client.h"
#include "util/contracts.h"
#include "util/net.h"
#include "util/rng.h"

#if defined(QUORUM_SERVE_BIN) && defined(QUORUM_WORKER_BIN)

namespace {

using namespace quorum;

bool env_flag(const char* name) {
    const char* raw = std::getenv(name);
    return raw != nullptr && raw[0] != '\0' && raw[0] != '0';
}

/// The same miniature flagship workload the golden-score fixtures pin
/// (tests/core/test_golden_scores.cpp): clustered data, planted
/// anomalies, 12 features, seed 2025.
data::dataset flagship_dataset(std::size_t samples) {
    util::rng gen(2025);
    data::generator_spec spec;
    spec.samples = samples;
    spec.anomalies = std::max<std::size_t>(1, samples / 16);
    spec.features = 12;
    spec.anomaly_shift = 0.3;
    return data::generate_clustered(spec, gen);
}

core::quorum_config flagship_config(core::exec_mode mode,
                                    std::size_t groups) {
    core::quorum_config config;
    config.ensemble_groups = groups;
    config.mode = mode;
    config.shots = mode == core::exec_mode::noisy ? 256 : 4096;
    config.seed = 2025;
    return config;
}

std::vector<std::vector<double>> rows_of(const data::dataset& d) {
    std::vector<std::vector<double>> rows(d.num_samples());
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        const std::span<const double> row = d.row(i);
        rows[i].assign(row.begin(), row.end());
    }
    return rows;
}

std::vector<double> plain_scores(const core::quorum_config& config,
                                 const data::dataset& d) {
    const core::quorum_detector detector(config);
    return detector.score(d).scores;
}

/// Spawns `quorum_serve` with the given flags, waits for its "serving
/// on host:port" announcement, and SIGKILLs it on teardown. QUORUM_WORKER
/// is pointed at the build-tree worker so the daemon's spawned fleet
/// workers are the real sanitized binaries.
class serve_daemon {
public:
    explicit serve_daemon(std::vector<std::string> args) {
        ::setenv("QUORUM_WORKER", QUORUM_WORKER_BIN, 1);
        int out_pipe[2];
        if (::pipe(out_pipe) != 0) {
            throw std::runtime_error("pipe failed");
        }
        pid_ = ::fork();
        if (pid_ == 0) {
            ::dup2(out_pipe[1], STDOUT_FILENO);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            std::vector<char*> argv;
            argv.push_back(const_cast<char*>(QUORUM_SERVE_BIN));
            for (std::string& arg : args) {
                argv.push_back(arg.data());
            }
            argv.push_back(nullptr);
            ::execv(QUORUM_SERVE_BIN, argv.data());
            std::perror("execv quorum_serve");
            ::_exit(127);
        }
        ::close(out_pipe[1]);
        // The daemon announces "registry on", "fleet of N workers ready"
        // and finally "serving on host:port" (all flushed together);
        // parse the serving endpoint out of that stream.
        std::string line;
        const std::string tag = "serving on ";
        char byte = 0;
        bool found = false;
        while (!found && ::read(out_pipe[0], &byte, 1) == 1) {
            if (byte != '\n') {
                line.push_back(byte);
                continue;
            }
            const std::size_t at = line.find(tag);
            if (at != std::string::npos) {
                std::string address = line.substr(at + tag.size());
                const std::size_t space = address.find(' ');
                if (space != std::string::npos) {
                    address.resize(space);
                }
                endpoint_ = util::parse_endpoint(address);
                found = true;
            }
            line.clear();
        }
        ::close(out_pipe[0]);
        if (!found) {
            throw std::runtime_error(
                "quorum_serve never announced its endpoint");
        }
    }

    ~serve_daemon() {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            ::waitpid(pid_, nullptr, 0);
        }
    }

    serve_daemon(const serve_daemon&) = delete;
    serve_daemon& operator=(const serve_daemon&) = delete;

    [[nodiscard]] const util::endpoint& where() const { return endpoint_; }

private:
    pid_t pid_ = -1;
    util::endpoint endpoint_;
};

const char* mode_flag(core::exec_mode mode) {
    switch (mode) {
    case core::exec_mode::exact:
        return "exact";
    case core::exec_mode::sampled:
        return "sampled";
    case core::exec_mode::per_shot:
        return "per_shot";
    case core::exec_mode::noisy:
        return "noisy";
    }
    return "sampled";
}

std::vector<std::string> serve_args(const core::quorum_config& config,
                                    std::size_t workers) {
    return {"--workers", std::to_string(workers),
            "--mode",    mode_flag(config.mode),
            "--groups",  std::to_string(config.ensemble_groups),
            "--shots",   std::to_string(config.shots),
            "--seed",    std::to_string(config.seed)};
}

// --- golden fixtures through the daemon -------------------------------------

/// Reads one named column of a committed golden fixture CSV
/// (tests/core/fixtures/) as doubles.
std::vector<double> fixture_column(const std::string& name,
                                   const std::string& column) {
    const std::string path =
        std::string(QUORUM_TEST_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path << " is missing";
    std::string line;
    EXPECT_TRUE(static_cast<bool>(std::getline(in, line)));
    std::stringstream header(line);
    std::string cell;
    int column_index = -1;
    for (int c = 0; std::getline(header, cell, ','); ++c) {
        if (cell == column) {
            column_index = c;
        }
    }
    EXPECT_GE(column_index, 0)
        << path << " has no \"" << column << "\" column";
    std::vector<double> values;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        std::stringstream cells(line);
        for (int c = 0; std::getline(cells, cell, ','); ++c) {
            if (c == column_index) {
                values.push_back(std::stod(cell));
            }
        }
    }
    return values;
}

TEST(ServeGolden, FlagshipScoresThroughTheDaemonMatchTheFixture) {
    // The committed flagship fixture (48 samples, groups 6, seed 2025,
    // %.17g columns) reproduced end to end: CSV rows over QSRV1 to a
    // daemon with a 2-worker TCP fleet, scores back as %.17g text —
    // equality against the fixture is equality to the last bit.
    if (env_flag("QUORUM_SKIP_GOLDEN_FIXTURES")) {
        GTEST_SKIP() << "golden fixtures skipped (non-CI platform)";
    }
    const data::dataset d = flagship_dataset(48);
    const std::vector<std::vector<double>> rows = rows_of(d);
    for (const core::exec_mode mode :
         {core::exec_mode::exact, core::exec_mode::sampled}) {
        const core::quorum_config config = flagship_config(mode, 6);
        const serve_daemon daemon(serve_args(config, 2));
        exec::serve_client client(daemon.where());
        const std::vector<double> served = client.score(rows);
        const std::vector<double> golden =
            fixture_column("flagship_scores.csv", mode_flag(mode));
        ASSERT_EQ(served.size(), golden.size()) << mode_flag(mode);
        for (std::size_t i = 0; i < served.size(); ++i) {
            EXPECT_EQ(served[i], golden[i])
                << mode_flag(mode) << " sample=" << i;
        }
    }
}

// --- fleet-size invariance in every mode ------------------------------------

TEST(ServeDeterminism, AllModesAreFleetSizeInvariantThroughTheDaemon) {
    // Reduced flagship shape (16 samples, groups 2, 32 shots) so that
    // 4 modes x 3 fleet sizes of full daemon round trips stay fast. The
    // contract is the tentpole's: serve-path scores are IEEE == to the
    // plain in-process detector for ANY fleet size, in EVERY mode.
    const data::dataset d = flagship_dataset(16);
    const std::vector<std::vector<double>> rows = rows_of(d);
    for (const core::exec_mode mode :
         {core::exec_mode::exact, core::exec_mode::sampled,
          core::exec_mode::per_shot, core::exec_mode::noisy}) {
        core::quorum_config config = flagship_config(mode, 2);
        config.shots = 32;
        const std::vector<double> reference = plain_scores(config, d);
        for (const std::size_t workers : {1u, 2u, 4u}) {
            const serve_daemon daemon(serve_args(config, workers));
            exec::serve_client client(daemon.where());
            const std::vector<double> served = client.score(rows);
            ASSERT_EQ(served.size(), reference.size());
            for (std::size_t i = 0; i < served.size(); ++i) {
                EXPECT_EQ(served[i], reference[i])
                    << mode_flag(mode) << " workers=" << workers
                    << " sample=" << i;
            }
        }
    }
}

// --- concurrent clients -----------------------------------------------------

TEST(ServeStress, ConcurrentClientsAreBitIdenticalToSequentialScores) {
    // >= 4 concurrent clients, each with its OWN dataset and its own
    // connection, interleaving requests through one shared 2-worker
    // fleet: every client's scores must equal its sequential in-process
    // reference bit for bit — concurrent multiplexing must not leak
    // state across requests.
    core::quorum_config config = flagship_config(core::exec_mode::sampled,
                                                 2);
    config.shots = 64;
    const serve_daemon daemon(serve_args(config, 2));

    constexpr int clients = 4;
    constexpr int rounds = 2;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int client = 0; client < clients; ++client) {
        threads.emplace_back([&, client] {
            util::rng gen(400 + static_cast<std::uint64_t>(client));
            data::generator_spec spec;
            spec.samples = 10;
            spec.anomalies = 2;
            spec.features = 12;
            spec.anomaly_shift = 0.3;
            const data::dataset d = data::generate_clustered(spec, gen);
            const std::vector<double> reference = plain_scores(config, d);
            const std::vector<std::vector<double>> rows = rows_of(d);
            exec::serve_client connection(daemon.where());
            for (int round = 0; round < rounds; ++round) {
                const std::vector<double> served = connection.score(rows);
                ASSERT_EQ(served.size(), reference.size());
                for (std::size_t i = 0; i < served.size(); ++i) {
                    EXPECT_EQ(served[i], reference[i])
                        << "client=" << client << " round=" << round
                        << " sample=" << i;
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
}

// --- churn + disconnects ----------------------------------------------------

/// A test-owned `quorum_worker --listen` process the test can SIGKILL
/// mid-service (the daemon's own spawned workers die with the daemon,
/// which is the wrong lifetime for a churn test).
class churn_worker {
public:
    churn_worker() {
        int out_pipe[2];
        if (::pipe(out_pipe) != 0) {
            throw std::runtime_error("pipe failed");
        }
        pid_ = ::fork();
        if (pid_ == 0) {
            ::dup2(out_pipe[1], STDOUT_FILENO);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            ::execl(QUORUM_WORKER_BIN, QUORUM_WORKER_BIN, "--listen",
                    "127.0.0.1:0", static_cast<char*>(nullptr));
            std::perror("execl quorum_worker");
            ::_exit(127);
        }
        ::close(out_pipe[1]);
        std::string line;
        char byte = 0;
        while (::read(out_pipe[0], &byte, 1) == 1 && byte != '\n') {
            line.push_back(byte);
        }
        ::close(out_pipe[0]);
        const std::string tag = "listening on ";
        const std::size_t at = line.find(tag);
        if (at == std::string::npos) {
            throw std::runtime_error(
                "worker did not announce its port: " + line);
        }
        endpoint_ = util::parse_endpoint(line.substr(at + tag.size()));
    }

    ~churn_worker() { kill_now(); }

    churn_worker(const churn_worker&) = delete;
    churn_worker& operator=(const churn_worker&) = delete;

    [[nodiscard]] const util::endpoint& where() const { return endpoint_; }
    void kill_now() {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            ::waitpid(pid_, nullptr, 0);
            pid_ = -1;
        }
    }

private:
    pid_t pid_ = -1;
    util::endpoint endpoint_;
};

TEST(ServeChurn, WorkerKilledMidServiceNeverCorruptsAnyClientsScores) {
    // The daemon's fleet is built from two TEST-owned --listen workers
    // (--connect-worker); four clients keep scoring while one worker is
    // SIGKILLed mid-service. In-flight spans requeue to the survivor —
    // every reply, before and after the kill, must be bit-identical to
    // the in-process reference. No client may observe an error.
    churn_worker worker_a;
    churn_worker worker_b;
    core::quorum_config config = flagship_config(core::exec_mode::sampled,
                                                 2);
    config.shots = 64;
    std::vector<std::string> args = {
        "--mode",           mode_flag(config.mode),
        "--groups",         std::to_string(config.ensemble_groups),
        "--shots",          std::to_string(config.shots),
        "--seed",           std::to_string(config.seed),
        "--connect-worker", worker_a.where().str(),
        "--connect-worker", worker_b.where().str()};
    const serve_daemon daemon(std::move(args));

    const data::dataset d = flagship_dataset(12);
    const std::vector<double> reference = plain_scores(config, d);
    const std::vector<std::vector<double>> rows = rows_of(d);

    constexpr int clients = 4;
    constexpr int rounds = 3;
    std::atomic<bool> start{false};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int client = 0; client < clients; ++client) {
        threads.emplace_back([&, client] {
            exec::serve_client connection(daemon.where());
            while (!start.load()) {
                std::this_thread::yield();
            }
            for (int round = 0; round < rounds; ++round) {
                const std::vector<double> served = connection.score(rows);
                ASSERT_EQ(served.size(), reference.size());
                for (std::size_t i = 0; i < served.size(); ++i) {
                    EXPECT_EQ(served[i], reference[i])
                        << "client=" << client << " round=" << round
                        << " sample=" << i;
                }
            }
        });
    }
    start.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    worker_a.kill_now(); // mid-service: requests are in flight right now
    for (std::thread& thread : threads) {
        thread.join();
    }
}

TEST(ServeChurn, ClientDisconnectMidBatchLeavesTheFleetHealthy) {
    // A rude client sends a full request and slams the connection shut
    // without reading its reply: the daemon's spans drain through the
    // fleet regardless, and the NEXT client must get bit-identical
    // scores — an abandoned batch can never poison a later one.
    core::quorum_config config = flagship_config(core::exec_mode::sampled,
                                                 2);
    config.shots = 64;
    const serve_daemon daemon(serve_args(config, 2));
    const data::dataset d = flagship_dataset(10);
    const std::vector<double> reference = plain_scores(config, d);
    const std::vector<std::vector<double>> rows = rows_of(d);

    {
        util::unique_fd rude = util::connect_tcp(daemon.where(), 5000);
        std::string request = "QSRV1 SCORE " + std::to_string(rows.size()) +
                              " " + std::to_string(rows[0].size()) + "\n";
        for (const std::vector<double>& row : rows) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                request += (c == 0 ? "" : ",");
                request += exec::serve_format_double(row[c]);
            }
            request += "\n";
        }
        util::send_all(rude.get(), request.data(), request.size(), 5000,
                       daemon.where().str());
    } // closed without reading the reply

    exec::serve_client polite(daemon.where());
    const std::vector<double> served = polite.score(rows);
    ASSERT_EQ(served.size(), reference.size());
    for (std::size_t i = 0; i < served.size(); ++i) {
        EXPECT_EQ(served[i], reference[i]) << i;
    }
}

// --- protocol edges ---------------------------------------------------------

TEST(ServeProtocol, MalformedRequestsGetStructuredErrorReplies) {
    core::quorum_config config = flagship_config(core::exec_mode::exact, 2);
    const serve_daemon daemon(serve_args(config, 1));

    const auto first_reply_line = [&](const std::string& request) {
        const util::unique_fd fd = util::connect_tcp(daemon.where(), 5000);
        util::send_all(fd.get(), request.data(), request.size(), 5000,
                       daemon.where().str());
        util::line_reader reader(fd.get(), 30000, daemon.where().str());
        std::string line;
        EXPECT_TRUE(reader.read_line(line)) << "no reply to: " << request;
        return line;
    };

    EXPECT_EQ(first_reply_line("HELLO\n").rfind("QSRV1 ERR ", 0), 0u);
    EXPECT_EQ(first_reply_line("QSRV1 SCORE 0 5\n").rfind("QSRV1 ERR ", 0),
              0u);
    EXPECT_EQ(
        first_reply_line("QSRV1 SCORE 1 3\n1.0,2.0\n").rfind("QSRV1 ERR ",
                                                             0),
        0u);
    EXPECT_EQ(
        first_reply_line("QSRV1 SCORE 1 2\n1.0,nonsense\n")
            .rfind("QSRV1 ERR ", 0),
        0u);

    // The daemon survives all of that abuse: a well-formed request on a
    // fresh connection still scores.
    const data::dataset d = flagship_dataset(6);
    exec::serve_client client(daemon.where());
    const std::vector<double> served = client.score(rows_of(d));
    const std::vector<double> reference = plain_scores(config, d);
    ASSERT_EQ(served.size(), reference.size());
    for (std::size_t i = 0; i < served.size(); ++i) {
        EXPECT_EQ(served[i], reference[i]) << i;
    }
}

} // namespace

#endif // QUORUM_SERVE_BIN && QUORUM_WORKER_BIN
