// Shard-invariance property suite: the sharded backend must produce
// BIT-identical batch results for any shard count, in every execution
// mode — determinism is the engine contract that keeps Quorum's scores
// reproducible when the ensemble fans out (and the regression the related
// QAE reproductions are notoriously brittle against).
#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/registry.h"
#include "exec/sharded_backend.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;

constexpr std::size_t shard_counts[] = {1, 2, 3, 7};

struct batch_fixture {
    qml::ansatz_params params;
    std::vector<std::vector<double>> amplitudes;

    explicit batch_fixture(std::uint64_t seed, std::size_t samples = 12) {
        util::rng gen(seed);
        params = qml::random_ansatz_params(3, 2, gen);
        amplitudes.resize(samples);
        for (auto& amps : amplitudes) {
            std::vector<double> features(7);
            for (double& f : features) {
                f = gen.uniform() / 7.0;
            }
            amps = qml::to_amplitudes(features, 3);
        }
    }

    [[nodiscard]] std::vector<exec::sample>
    make_samples(std::vector<util::rng>* gens = nullptr) const {
        std::vector<exec::sample> samples(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            samples[i].amplitudes = amplitudes[i];
            if (gens != nullptr) {
                samples[i].gen = &(*gens)[i];
            }
        }
        return samples;
    }

    [[nodiscard]] std::vector<util::rng> make_gens(std::uint64_t seed) const {
        std::vector<util::rng> gens;
        gens.reserve(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            gens.emplace_back(util::derive_seed(seed, i));
        }
        return gens;
    }
};

exec::program analytic_program(const qml::ansatz_params& params,
                               std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_reg_a_template(params, level));
    program.readout.kind = exec::readout_kind::prep_overlap_p1;
    return program;
}

exec::program full_program(const qml::ansatz_params& params,
                           std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_template(params, level));
    program.readout.kind = exec::readout_kind::cbit_probability;
    program.readout.cbit = qml::swap_result_cbit;
    return program;
}

/// Runs the batch through "sharded:<inner>" at every shard count and
/// asserts bitwise equality with the unsharded inner backend. Stochastic
/// configs re-derive fresh per-sample streams per run, exactly as the
/// ensemble loop does — shard invariance must hold for them too.
void expect_shard_invariant(const batch_fixture& fixture,
                            const exec::program& program,
                            const std::string& inner,
                            exec::engine_config config,
                            bool stochastic) {
    std::vector<double> reference(fixture.amplitudes.size());
    {
        config.shards = 1;
        const auto engine = exec::make_executor(inner, config);
        std::vector<util::rng> gens = fixture.make_gens(99);
        engine->run_batch(
            program, fixture.make_samples(stochastic ? &gens : nullptr),
            reference);
    }
    for (const std::size_t shards : shard_counts) {
        config.shards = shards;
        const auto engine = exec::make_executor("sharded:" + inner, config);
        std::vector<util::rng> gens = fixture.make_gens(99);
        std::vector<double> out(fixture.amplitudes.size());
        engine->run_batch(
            program, fixture.make_samples(stochastic ? &gens : nullptr),
            out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            // EXPECT_EQ on doubles = bit-identical (==> equality at 17
            // significant digits, the strongest printable guarantee).
            EXPECT_EQ(out[i], reference[i])
                << "shards=" << shards << " sample=" << i;
        }
    }
}

TEST(ShardedBackend, ExactModeIsBitIdenticalForAnyShardCount) {
    const batch_fixture fixture(31);
    expect_shard_invariant(fixture, analytic_program(fixture.params, 1),
                           "statevector", exec::engine_config{},
                           /*stochastic=*/false);
    expect_shard_invariant(fixture, full_program(fixture.params, 2),
                           "statevector", exec::engine_config{},
                           /*stochastic=*/false);
}

TEST(ShardedBackend, SampledModeIsBitIdenticalForAnyShardCount) {
    const batch_fixture fixture(33);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 512;
    expect_shard_invariant(fixture, analytic_program(fixture.params, 1),
                           "statevector", config, /*stochastic=*/true);
}

TEST(ShardedBackend, PerShotModeIsBitIdenticalForAnyShardCount) {
    const batch_fixture fixture(35, 6);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::per_shot;
    config.shots = 64;
    expect_shard_invariant(fixture, full_program(fixture.params, 1),
                           "statevector", config, /*stochastic=*/true);
}

TEST(ShardedBackend, NoisyModeIsBitIdenticalForAnyShardCount) {
    const batch_fixture fixture(37, 5);
    exec::engine_config config;
    config.noise = qsim::noise_model::ibm_brisbane_median();
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 256;
    expect_shard_invariant(fixture, full_program(fixture.params, 1),
                           "density", config, /*stochastic=*/true);
}

TEST(ShardedBackend, BatchedDensityMatchesPerSampleMaterializedRuns) {
    // The batched density path (shared-suffix transpile cache) must stay
    // bit-identical to transpiling each sample's materialized circuit.
    const batch_fixture fixture(39, 4);
    exec::engine_config config;
    config.noise = qsim::noise_model::ibm_brisbane_median();
    const auto engine = exec::make_executor("density", config);
    const exec::program program = full_program(fixture.params, 1);
    std::vector<double> batched(fixture.amplitudes.size());
    engine->run_batch(program, fixture.make_samples(), batched);
    for (std::size_t i = 0; i < fixture.amplitudes.size(); ++i) {
        const qsim::circuit c =
            program.circuit.materialize(fixture.amplitudes[i]);
        EXPECT_EQ(batched[i],
                  engine->run(c, qml::swap_result_cbit, nullptr))
            << i;
    }
}

TEST(ShardedBackend, MoreShardsThanSamplesStillCoversEverySample) {
    const batch_fixture fixture(41, 3);
    exec::engine_config config;
    config.shards = 7; // > samples: some shards get no work
    const auto engine = exec::make_executor("sharded:statevector", config);
    const exec::program program = analytic_program(fixture.params, 1);
    std::vector<double> out(fixture.amplitudes.size(), -1.0);
    engine->run_batch(program, fixture.make_samples(), out);
    for (const double value : out) {
        EXPECT_GE(value, 0.0);
        EXPECT_LE(value, 1.0);
    }
}

TEST(ShardedBackend, PlanIsStableContiguousAndBalanced) {
    for (const std::size_t n : {1u, 7u, 60u, 241u}) {
        for (const std::size_t shards : {1u, 2u, 3u, 7u, 64u}) {
            const auto plan = exec::make_shard_plan(n, shards, nullptr, 5);
            const auto replay = exec::make_shard_plan(n, shards, nullptr, 5);
            ASSERT_EQ(plan.size(), replay.size());
            std::size_t covered = 0;
            for (std::size_t k = 0; k < plan.size(); ++k) {
                // Keyed by sample index only: re-planning is bit-stable.
                EXPECT_EQ(plan[k].shard, replay[k].shard);
                EXPECT_EQ(plan[k].first, replay[k].first);
                EXPECT_EQ(plan[k].count, replay[k].count);
                EXPECT_EQ(plan[k].rng_seed, replay[k].rng_seed);
                EXPECT_EQ(plan[k].first, covered); // contiguous, in order
                EXPECT_GT(plan[k].count, 0u);      // no empty spans
                // Balanced to within one sample.
                EXPECT_LE(plan[k].count, n / shards + 1);
                covered += plan[k].count;
            }
            EXPECT_EQ(covered, n) << n << " samples, " << shards
                                  << " shards";
        }
    }
}

TEST(ShardedBackend, PathologicalShardCountsAreCappedNotLooped) {
    // An unsigned wrap of "-1" (or any huge value) must not spin 2^64
    // plan iterations or overflow the span arithmetic.
    const auto plan = exec::make_shard_plan(
        5, std::numeric_limits<std::size_t>::max(), nullptr, 1);
    ASSERT_EQ(plan.size(), 5u);
    for (std::size_t k = 0; k < plan.size(); ++k) {
        EXPECT_EQ(plan[k].first, k);
        EXPECT_EQ(plan[k].count, 1u);
    }
    // The backend clamps its lane count too (lanes are real threads).
    exec::engine_config config;
    config.shards = std::numeric_limits<std::size_t>::max();
    const exec::sharded_backend engine(config, "statevector");
    EXPECT_EQ(engine.shard_count(), 256u);
}

TEST(ShardedBackend, PlanSeedsAreDerivedPerShard) {
    const auto plan = exec::make_shard_plan(16, 4, nullptr, 2025);
    for (const exec::shard_work& work : plan) {
        EXPECT_EQ(work.rng_seed, quorum::util::derive_seed(2025, work.shard));
    }
}

TEST(ShardedBackend, FailingShardSurfacesAsStructuredError) {
    const batch_fixture fixture(43, 8);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 0; // invalid: the INNER constructor must reject this
    EXPECT_THROW((void)exec::make_executor("sharded:statevector", config),
                 util::contract_error);

    // A malformed batch is rejected by the upfront whole-batch validation
    // (before any shard runs), deterministically, never a hang.
    config.shots = 16;
    config.shards = 3;
    const auto engine = exec::make_executor("sharded:statevector", config);
    const exec::program program = analytic_program(fixture.params, 1);
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine->run_batch(program, fixture.make_samples(), out); // no rng
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "rng"), nullptr)
            << error.what();
    }
}

/// A registry backend whose run_batch always throws — drives the
/// per-shard error path that upfront validation can't reach.
class exploding_backend final : public exec::executor {
public:
    explicit exploding_backend(bool contract) : contract_(contract) {}

    [[nodiscard]] std::string_view name() const noexcept override {
        return "exploding";
    }
    [[nodiscard]] bool
    supports(exec::readout_kind) const noexcept override {
        return true;
    }
    [[nodiscard]] double run(const qsim::circuit&, int,
                             util::rng*) const override {
        boom();
    }
    void run_batch(const exec::program&, std::span<const exec::sample>,
                   std::span<double>) const override {
        boom();
    }

private:
    [[noreturn]] void boom() const {
        if (contract_) {
            throw util::contract_error("boom");
        }
        throw std::runtime_error("boom");
    }
    bool contract_;
};

TEST(ShardedBackend, MidRunShardFailureNamesTheShardAndSpan) {
    exec::register_backend("exploding", [](const exec::engine_config&) {
        return std::unique_ptr<exec::executor>(
            new exploding_backend(/*contract=*/true));
    });
    const batch_fixture fixture(47, 9);
    exec::engine_config config;
    config.shards = 3;
    const auto engine = exec::make_executor("sharded:exploding", config);
    const exec::program program = analytic_program(fixture.params, 1);
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine->run_batch(program, fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        // An inner contract violation is rewrapped as a structured error
        // naming the shard and its sample span; first failure wins, all
        // shards still drain (no hang).
        EXPECT_NE(std::strstr(error.what(), "shard "), nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "samples ["), nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "failed: boom"), nullptr)
            << error.what();
    }
}

TEST(ShardedBackend, NonContractShardFailureKeepsItsType) {
    exec::register_backend("exploding", [](const exec::engine_config&) {
        return std::unique_ptr<exec::executor>(
            new exploding_backend(/*contract=*/false));
    });
    const batch_fixture fixture(49, 6);
    exec::engine_config config;
    config.shards = 2;
    const auto engine = exec::make_executor("sharded:exploding", config);
    const exec::program program = analytic_program(fixture.params, 1);
    std::vector<double> out(fixture.amplitudes.size());
    // Resource-style failures are not contract violations: the original
    // exception type must survive the shard boundary for callers that
    // classify errors (retryable vs programming error).
    EXPECT_THROW(engine->run_batch(program, fixture.make_samples(), out),
                 std::runtime_error);
}

TEST(ShardedBackend, SpecParsingValidatesShape) {
    EXPECT_THROW((void)exec::parse_backend_spec(""), util::contract_error);
    EXPECT_THROW((void)exec::parse_backend_spec(":statevector"),
                 util::contract_error);
    EXPECT_THROW((void)exec::parse_backend_spec("sharded:"),
                 util::contract_error);
    EXPECT_THROW((void)exec::parse_backend_spec("density:foo"),
                 util::contract_error);
    EXPECT_THROW((void)exec::parse_backend_spec("sharded:sharded"),
                 util::contract_error);
    EXPECT_THROW((void)exec::parse_backend_spec("sharded:sharded:density"),
                 util::contract_error);

    const exec::backend_spec plain = exec::parse_backend_spec("density");
    EXPECT_EQ(plain.name, "density");
    EXPECT_TRUE(plain.inner.empty());
    const exec::backend_spec composite =
        exec::parse_backend_spec("sharded:density");
    EXPECT_EQ(composite.name, "sharded");
    EXPECT_EQ(composite.inner, "density");
}

TEST(ShardedBackend, RegistryResolvesShardedSpecs) {
    EXPECT_TRUE(exec::is_backend_registered("sharded"));
    EXPECT_TRUE(exec::is_backend_registered("sharded:statevector"));
    EXPECT_TRUE(exec::is_backend_registered("sharded:density"));
    EXPECT_FALSE(exec::is_backend_registered("sharded:bogus"));
    EXPECT_FALSE(exec::is_backend_registered("sharded:sharded"));
    EXPECT_THROW((void)exec::make_executor("sharded:bogus",
                                           exec::engine_config{}),
                 util::contract_error);

    const auto names = exec::backend_names();
    EXPECT_NE(std::find(names.begin(), names.end(), "sharded"), names.end());

    exec::engine_config config;
    config.shards = 2;
    const auto bare = exec::make_executor("sharded", config);
    EXPECT_EQ(bare->name(), "sharded:statevector"); // default inner
    const auto dense = exec::make_executor("sharded:density", config);
    EXPECT_EQ(dense->name(), "sharded:density");
    EXPECT_TRUE(dense->supports(exec::readout_kind::cbit_probability));
    EXPECT_FALSE(dense->supports(exec::readout_kind::prep_overlap_p1));
}

TEST(ShardedBackend, ShardCountResolvesZeroToHardware) {
    exec::engine_config config;
    config.shards = 3;
    const exec::sharded_backend engine(config, "statevector");
    EXPECT_EQ(engine.shard_count(), 3u);
    EXPECT_EQ(engine.inner().name(), "statevector");

    config.shards = 0;
    const exec::sharded_backend defaulted(config, "statevector");
    EXPECT_GE(defaulted.shard_count(), 1u);
}

TEST(ShardedBackend, RunDelegatesToInnerBackend) {
    const batch_fixture fixture(45, 1);
    exec::engine_config config;
    config.shards = 2;
    const auto sharded = exec::make_executor("sharded:statevector", config);
    const auto inner =
        exec::make_executor("statevector", exec::engine_config{});
    const qsim::circuit c = qml::build_autoencoder_circuit(
        fixture.amplitudes[0], fixture.params, 1);
    EXPECT_EQ(sharded->run(c, qml::swap_result_cbit, nullptr),
              inner->run(c, qml::swap_result_cbit, nullptr));
}

} // namespace
