// TCP transport property suite: endpoint parsing, framing over real
// sockets (partial reads, truncation at every byte boundary, oversized
// frames), the byte-pinned framed handshake, structured connect/timeout
// errors naming host:port, and the remote backend running over
// tcp_transport_factory against REAL `quorum_worker --listen` processes
// with lane counts that round-robin over fewer workers.
//
// The in-process cases use AF_UNIX socketpairs adopted by the transport
// (identical code path to a TCP fd), so the framing properties all run
// under the sanitizer job without touching the network stack.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "exec/registry.h"
#include "exec/remote_backend.h"
#include "exec/serialise.h"
#include "exec/tcp_transport.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "util/contracts.h"
#include "util/net.h"
#include "util/rng.h"

namespace {

using namespace quorum;

// --- endpoint parsing -------------------------------------------------------

TEST(NetEndpoint, ParsesHostPortForms) {
    const util::endpoint full = util::parse_endpoint("127.0.0.1:8400");
    EXPECT_EQ(full.host, "127.0.0.1");
    EXPECT_EQ(full.port, 8400);
    EXPECT_EQ(full.str(), "127.0.0.1:8400");

    const util::endpoint bare = util::parse_endpoint("8400");
    EXPECT_EQ(bare.host, "127.0.0.1");
    EXPECT_EQ(bare.port, 8400);

    const util::endpoint colon = util::parse_endpoint(":8400");
    EXPECT_EQ(colon.host, "127.0.0.1");
    EXPECT_EQ(colon.port, 8400);
}

TEST(NetEndpoint, RejectsMalformedText) {
    for (const char* bad : {"", ":", "127.0.0.1:", "127.0.0.1:0x10",
                            "127.0.0.1:65536", "127.0.0.1:-1", "host:12",
                            "127.0.0.1:12:13", "127.0.0.1:nan", "1 2"}) {
        EXPECT_THROW((void)util::parse_endpoint(bad), util::contract_error)
            << "accepted \"" << bad << "\"";
    }
}

// --- framing over a socketpair ----------------------------------------------

/// An adopted socketpair channel: `mine` is the transport's socket,
/// `theirs` is the test's raw view of the wire.
struct wire_pair {
    exec::tcp_transport transport;
    util::unique_fd theirs;

    static wire_pair make(exec::tcp_options options = {}) {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
            throw std::runtime_error("socketpair failed");
        }
        return wire_pair{
            exec::tcp_transport(util::unique_fd(fds[0]), "test-peer:0",
                                options),
            util::unique_fd(fds[1])};
    }
};

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> bytes(4 + payload.size());
    const auto size = static_cast<std::uint32_t>(payload.size());
    for (int shift = 0; shift < 32; shift += 8) {
        bytes[static_cast<std::size_t>(shift / 8)] =
            static_cast<std::uint8_t>(size >> shift);
    }
    if (!payload.empty()) {
        std::memcpy(bytes.data() + 4, payload.data(), payload.size());
    }
    return bytes;
}

void write_raw(int fd, const void* data, std::size_t size) {
    const char* bytes = static_cast<const char*>(data);
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::write(fd, bytes + sent, size - sent);
        ASSERT_GT(n, 0) << "raw write failed: " << std::strerror(errno);
        sent += static_cast<std::size_t>(n);
    }
}

std::vector<std::uint8_t> read_raw(int fd, std::size_t size) {
    std::vector<std::uint8_t> bytes(size);
    std::size_t received = 0;
    while (received < size) {
        const ssize_t n =
            ::read(fd, bytes.data() + received, size - received);
        if (n <= 0) {
            ADD_FAILURE() << "raw read failed";
            return bytes;
        }
        received += static_cast<std::size_t>(n);
    }
    return bytes;
}

TEST(TcpTransport, SendMessageEmitsLengthPrefixedFrames) {
    wire_pair pair = wire_pair::make();
    const std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x05};
    pair.transport.send_message(payload);
    const std::vector<std::uint8_t> wire_bytes =
        read_raw(pair.theirs.get(), 4 + payload.size());
    const std::vector<std::uint8_t> expected = frame(payload);
    EXPECT_EQ(wire_bytes, expected);
}

TEST(TcpTransport, RecvMessageReassemblesByteDribbledFrames) {
    // The peer trickles the frame one byte at a time: recv_message must
    // assemble across arbitrarily fragmented reads (TCP guarantees
    // nothing about segment boundaries).
    wire_pair pair = wire_pair::make();
    std::vector<std::uint8_t> payload(97);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
    }
    const std::vector<std::uint8_t> bytes = frame(payload);
    std::thread dribbler([&] {
        for (const std::uint8_t byte : bytes) {
            write_raw(pair.theirs.get(), &byte, 1);
        }
    });
    const std::vector<std::uint8_t> received = pair.transport.recv_message();
    dribbler.join();
    EXPECT_EQ(received, payload);
}

TEST(TcpTransport, EmptyPayloadRoundTrips) {
    wire_pair pair = wire_pair::make();
    const std::vector<std::uint8_t> bytes = frame({});
    write_raw(pair.theirs.get(), bytes.data(), bytes.size());
    EXPECT_TRUE(pair.transport.recv_message().empty());
}

TEST(TcpTransport, TruncationAtEveryByteBoundaryIsATransportError) {
    // The peer sends the first `cut` bytes of a valid frame and closes.
    // For EVERY cut point — inside the header, at the header/payload
    // boundary, inside the payload — the transport must throw
    // transport_error naming the peer, never hang or return garbage.
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
    const std::vector<std::uint8_t> bytes = frame(payload);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        wire_pair pair = wire_pair::make();
        write_raw(pair.theirs.get(), bytes.data(), cut);
        pair.theirs.reset(); // EOF after `cut` bytes
        try {
            (void)pair.transport.recv_message();
            FAIL() << "cut=" << cut << ": expected transport_error";
        } catch (const exec::transport_error& error) {
            EXPECT_NE(std::strstr(error.what(), "test-peer:0"), nullptr)
                << "cut=" << cut << ": " << error.what();
        }
    }
}

TEST(TcpTransport, CorruptedLengthHeaderIsAStructuredError) {
    // A garbled length header that decodes past max_message_bytes must be
    // rejected before any allocation attempt.
    wire_pair pair = wire_pair::make();
    const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    write_raw(pair.theirs.get(), huge, sizeof(huge));
    try {
        (void)pair.transport.recv_message();
        FAIL() << "expected transport_error";
    } catch (const exec::transport_error& error) {
        EXPECT_NE(std::strstr(error.what(), "oversized frame"), nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "test-peer:0"), nullptr)
            << error.what();
    }
}

TEST(TcpTransport, OversizedSendIsRejectedLocally) {
    wire_pair pair = wire_pair::make();
    // Don't allocate 256 MiB: an empty span with a forged size is not
    // constructible, so check the guard just above the limit via the
    // documented constant and a sized-but-cheap vector.
    std::vector<std::uint8_t> too_big;
    EXPECT_NO_THROW(too_big.resize(exec::wire::max_message_bytes + 1));
    EXPECT_THROW(pair.transport.send_message(too_big),
                 util::contract_error);
}

TEST(TcpTransport, ReadTimeoutSurfacesAsTransportErrorNamingThePeer) {
    exec::tcp_options options;
    options.io_timeout_ms = 50;
    wire_pair pair = wire_pair::make(options); // silent peer
    try {
        (void)pair.transport.recv_message();
        FAIL() << "expected transport_error";
    } catch (const exec::transport_error& error) {
        EXPECT_NE(std::strstr(error.what(), "test-peer:0"), nullptr)
            << error.what();
    }
}

TEST(TcpTransport, ConnectionRefusedNamesTheEndpoint) {
    // Bind an ephemeral port, learn it, close the listener: connecting to
    // it afterwards is a guaranteed refusal on loopback.
    std::uint16_t dead_port = 0;
    {
        const util::unique_fd listener =
            util::listen_tcp(util::endpoint{"127.0.0.1", 0});
        dead_port = util::bound_port(listener.get());
    }
    const util::endpoint dead{"127.0.0.1", dead_port};
    exec::tcp_options options;
    options.connect_timeout_ms = 2000;
    try {
        const exec::tcp_transport transport(dead, options);
        FAIL() << "expected transport_error";
    } catch (const exec::transport_error& error) {
        EXPECT_NE(std::strstr(error.what(), dead.str().c_str()), nullptr)
            << error.what();
    }
}

// --- byte-pinned handshake over the framed channel --------------------------

TEST(TcpTransport, FramedHelloMatchesTheDocumentedBytes) {
    // The exact frame a worker sees when a default-config statevector
    // client dials in: 4-byte length prefix (81 = 0x51) + the hello
    // payload documented in docs/ARCHITECTURE.md (and pinned unframed in
    // test_serialise.cpp). If this breaks, the wire format changed —
    // bump protocol_version AND update the docs.
    wire_pair pair = wire_pair::make();
    pair.transport.send_message(
        exec::wire::encode_hello("statevector", exec::engine_config{}));
    const std::uint8_t doc_frame[] = {
        0x51, 0x00, 0x00, 0x00,  // frame length: 81
        0x01,                    // message type: hello
        0x51, 0x52, 0x4D, 0x57,  // magic "QRMW"
        0x02, 0x00, 0x00, 0x00,  // protocol version 2
        0x0B, 0x00, 0x00, 0x00,  // inner name length: 11
        's', 't', 'a', 't', 'e', 'v', 'e', 'c', 't', 'o', 'r',
        0x00,                                            // sampling: exact
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // shots: 0
        0x00, 0x00, 0x00, 0x00,  // depolarizing entries: 0
        0x00, 0x00, 0x00, 0x00,  // duration entries: 0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // t1_us: 0.0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // t2_us: 0.0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // P(1|0): 0.0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // P(0|1): 0.0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // measure ns
    };
    const std::vector<std::uint8_t> wire_bytes =
        read_raw(pair.theirs.get(), sizeof(doc_frame));
    ASSERT_EQ(wire_bytes.size(), sizeof(doc_frame));
    EXPECT_EQ(std::memcmp(wire_bytes.data(), doc_frame, sizeof(doc_frame)),
              0);
}

TEST(TcpTransport, HandshakeAckRoundTripsOverTheFramedChannel) {
    // Full framed handshake against an in-process worker_session on the
    // far end of the socketpair: frame in, frame out, ack checks clean.
    wire_pair pair = wire_pair::make();
    std::thread worker_side([&] {
        const std::vector<std::uint8_t> header =
            read_raw(pair.theirs.get(), 4);
        std::uint32_t size = 0;
        for (int shift = 0; shift < 32; shift += 8) {
            size |= static_cast<std::uint32_t>(
                        header[static_cast<std::size_t>(shift / 8)])
                    << shift;
        }
        const std::vector<std::uint8_t> request =
            read_raw(pair.theirs.get(), size);
        exec::worker_session session;
        const std::vector<std::uint8_t> framed =
            frame(session.handle(request));
        write_raw(pair.theirs.get(), framed.data(), framed.size());
    });
    pair.transport.send_message(
        exec::wire::encode_hello("statevector", exec::engine_config{}));
    const std::vector<std::uint8_t> ack = pair.transport.recv_message();
    worker_side.join();
    EXPECT_NO_THROW(exec::wire::check_hello_ack(ack, "test-peer:0"));
}

// --- real `quorum_worker --listen` processes --------------------------------

#ifdef QUORUM_WORKER_BIN

/// Spawns `quorum_worker --listen 127.0.0.1:0` and parses the bound port
/// from its stdout line. SIGKILL + reap on teardown (the worker runs
/// until killed by design).
class listen_worker {
public:
    listen_worker() {
        int out_pipe[2];
        if (::pipe(out_pipe) != 0) {
            throw std::runtime_error("pipe failed");
        }
        pid_ = ::fork();
        if (pid_ == 0) {
            ::dup2(out_pipe[1], STDOUT_FILENO);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            ::execl(QUORUM_WORKER_BIN, QUORUM_WORKER_BIN, "--listen",
                    "127.0.0.1:0", static_cast<char*>(nullptr));
            std::perror("execl quorum_worker");
            ::_exit(127);
        }
        ::close(out_pipe[1]);
        std::string line;
        char byte = 0;
        while (::read(out_pipe[0], &byte, 1) == 1 && byte != '\n') {
            line.push_back(byte);
        }
        ::close(out_pipe[0]);
        const std::string tag = "listening on 127.0.0.1:";
        const std::size_t at = line.find(tag);
        if (at == std::string::npos) {
            throw std::runtime_error("worker did not announce its port: " +
                                     line);
        }
        endpoint_.host = "127.0.0.1";
        endpoint_.port = static_cast<std::uint16_t>(
            std::stoul(line.substr(at + tag.size())));
    }

    ~listen_worker() {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            ::waitpid(pid_, nullptr, 0);
        }
    }

    listen_worker(const listen_worker&) = delete;
    listen_worker& operator=(const listen_worker&) = delete;

    [[nodiscard]] const util::endpoint& where() const { return endpoint_; }
    void kill_now() {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            ::waitpid(pid_, nullptr, 0);
            pid_ = -1;
        }
    }

private:
    pid_t pid_ = -1;
    util::endpoint endpoint_;
};

struct tcp_batch_fixture {
    qml::ansatz_params params;
    std::vector<std::vector<double>> amplitudes;

    explicit tcp_batch_fixture(std::uint64_t seed, std::size_t samples = 12) {
        util::rng gen(seed);
        params = qml::random_ansatz_params(3, 2, gen);
        amplitudes.resize(samples);
        for (auto& amps : amplitudes) {
            std::vector<double> features(7);
            for (double& f : features) {
                f = gen.uniform() / 7.0;
            }
            amps = qml::to_amplitudes(features, 3);
        }
    }

    [[nodiscard]] std::vector<exec::sample>
    make_samples(std::vector<util::rng>* gens = nullptr) const {
        std::vector<exec::sample> samples(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            samples[i].amplitudes = amplitudes[i];
            if (gens != nullptr) {
                samples[i].gen = &(*gens)[i];
            }
        }
        return samples;
    }

    [[nodiscard]] std::vector<util::rng> make_gens(std::uint64_t seed) const {
        std::vector<util::rng> gens;
        gens.reserve(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            gens.emplace_back(util::derive_seed(seed, i));
        }
        return gens;
    }
};

exec::program tcp_analytic_program(const qml::ansatz_params& params,
                                   std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_reg_a_template(params, level));
    program.readout.kind = exec::readout_kind::prep_overlap_p1;
    return program;
}

TEST(TcpWorker, RemoteBackendOverTcpMatchesThePlainBackend) {
    // Two real --listen workers; lane counts {1, 2, 4} round-robin the
    // connections (4 lanes = 2 per worker, served concurrently). Scores
    // must be IEEE == to the plain inner backend at every lane count —
    // the same invariance the loopback suite proves, now across sockets.
    const tcp_batch_fixture fixture(91);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 256;
    std::vector<double> reference(fixture.amplitudes.size());
    {
        const auto inner = exec::make_executor("statevector", config);
        std::vector<util::rng> gens = fixture.make_gens(7);
        inner->run_batch(tcp_analytic_program(fixture.params, 1),
                         fixture.make_samples(&gens), reference);
    }

    listen_worker worker_a;
    listen_worker worker_b;
    const std::vector<util::endpoint> endpoints = {worker_a.where(),
                                                   worker_b.where()};
    for (const std::size_t lanes : {1u, 2u, 4u}) {
        config.shards = lanes;
        const exec::remote_backend engine(
            config, "statevector", exec::tcp_transport_factory(endpoints));
        std::vector<util::rng> gens = fixture.make_gens(7);
        std::vector<double> out(fixture.amplitudes.size());
        engine.run_batch(tcp_analytic_program(fixture.params, 1),
                         fixture.make_samples(&gens), out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i])
                << "lanes=" << lanes << " sample=" << i;
        }
    }
}

TEST(TcpWorker, ListenWorkerOutlivesItsClients) {
    // Three sequential client connections to ONE worker, each a complete
    // handshake+span session: the worker must survive every disconnect
    // and serve the next client from a fresh session.
    const tcp_batch_fixture fixture(93, 6);
    exec::engine_config config;
    std::vector<double> reference(fixture.amplitudes.size());
    exec::make_executor("statevector", config)
        ->run_batch(tcp_analytic_program(fixture.params, 1),
                    fixture.make_samples(), reference);

    listen_worker worker;
    config.shards = 1;
    for (int round = 0; round < 3; ++round) {
        const exec::remote_backend engine(
            config, "statevector",
            exec::tcp_transport_factory({worker.where()}));
        std::vector<double> out(fixture.amplitudes.size());
        engine.run_batch(tcp_analytic_program(fixture.params, 1),
                         fixture.make_samples(), out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i]) << "round=" << round << " "
                                            << i;
        }
    } // engine (and its connections) torn down each round
}

TEST(TcpWorker, ForgedProtocolVersionIsRejectedOverTcp) {
    // Hand-build a hello claiming a future protocol version and push it
    // through a raw tcp_transport to a REAL worker: the reply must be a
    // structured error naming the version, not a crash or an ack.
    listen_worker worker;
    exec::tcp_transport transport(worker.where());
    exec::wire::writer forged;
    forged.u8(static_cast<std::uint8_t>(exec::wire::message::hello));
    forged.u32(exec::wire::protocol_magic);
    forged.u32(exec::wire::protocol_version + 9);
    forged.str("statevector");
    transport.send_message(forged.data());
    const std::vector<std::uint8_t> reply = transport.recv_message();
    try {
        exec::wire::check_hello_ack(reply, worker.where().str());
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "protocol version"), nullptr)
            << error.what();
    }
}

TEST(TcpWorker, DeadWorkerMidSpanSurfacesThroughTheFaultModel) {
    // SIGKILL the only worker once a connection is up: the next exchange
    // hits a reset/EOF, the remote backend retries through the factory,
    // the reconnect is refused, and the failure surfaces as the fault
    // model's structured contract_error naming the lane and span.
    const tcp_batch_fixture fixture(95, 4);
    exec::engine_config config;
    config.shards = 1;
    listen_worker worker;
    const exec::remote_backend engine(
        config, "statevector",
        exec::tcp_transport_factory({worker.where()}));
    worker.kill_now();
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine.run_batch(tcp_analytic_program(fixture.params, 1),
                         fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "remote worker "), nullptr)
            << error.what();
    }
}

#endif // QUORUM_WORKER_BIN

} // namespace
