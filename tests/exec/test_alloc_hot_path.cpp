// Steady-state allocation pinning for the exact replay hot path. The
// batch executors warm their buffers (branch arena, scratch, chi, slot
// amplitudes) on the first sample and then replay every further sample
// allocation-free — this suite pins that by counting global operator new
// calls: a batch of 64 samples must allocate exactly as much as a batch
// of 8, i.e. zero heap allocations per sample after warm-up.
//
// The operator new/delete replacements below are binary-wide, so they
// count for every test in quorum_test_exec; they only bump an atomic and
// delegate to malloc, which keeps the other suites (and sanitizer runs)
// unaffected.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "exec/statevector_backend.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qsim/compiled_program.h"
#include "util/rng.h"

namespace {

std::atomic<std::uint64_t> g_new_calls{0};

std::uint64_t new_calls() {
    return g_new_calls.load(std::memory_order_relaxed);
}

} // namespace

void* operator new(std::size_t size) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size != 0 ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace quorum;

/// Generic (all-branches-survive) samples for an n-qubit register-A
/// program: every reset sees both outcomes with nonzero probability, so
/// the branch structure — and therefore the steady-state buffer shapes —
/// are identical for every sample.
std::vector<std::vector<double>> generic_amplitudes(std::size_t n_qubits,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
    util::rng gen(seed);
    std::vector<std::vector<double>> out(count);
    for (auto& amps : out) {
        std::vector<double> features((std::size_t{1} << n_qubits) - 1);
        for (double& f : features) {
            f = gen.uniform() / static_cast<double>(features.size());
        }
        amps = qml::to_amplitudes(features, n_qubits);
    }
    return out;
}

std::vector<exec::sample>
make_samples(const std::vector<std::vector<double>>& amplitudes) {
    std::vector<exec::sample> samples(amplitudes.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        samples[i].amplitudes = amplitudes[i];
    }
    return samples;
}

exec::program reg_a_program(const qml::ansatz_params& params,
                            std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_reg_a_template(params, level));
    program.readout.kind = exec::readout_kind::prep_overlap_p1;
    return program;
}

TEST(alloc_hot_path, run_batch_exact_allocates_nothing_per_sample) {
    const std::size_t n_qubits = 5;
    util::rng gen(4242);
    const qml::ansatz_params params =
        qml::random_ansatz_params(n_qubits, 2, gen);
    const exec::program program = reg_a_program(params, 2);
    const auto amplitudes = generic_amplitudes(n_qubits, 64, 99);
    const std::vector<exec::sample> samples = make_samples(amplitudes);
    const exec::statevector_backend engine(
        exec::engine_config{.sampling_mode = exec::sampling::exact});
    std::vector<double> out(samples.size());

    // Warm-up absorbs any lazy one-time initialisation (ISA detection,
    // gtest internals touched on first use, ...).
    engine.run_batch(program, std::span(samples).first(8),
                     std::span(out).first(8));

    const std::uint64_t before_small = new_calls();
    engine.run_batch(program, std::span(samples).first(8),
                     std::span(out).first(8));
    const std::uint64_t small = new_calls() - before_small;

    const std::uint64_t before_large = new_calls();
    engine.run_batch(program, samples, out);
    const std::uint64_t large = new_calls() - before_large;

    // Identical totals for 8 and 64 samples: every allocation is per
    // batch (buffers, plan), none per sample.
    EXPECT_EQ(small, large) << "per-sample allocations crept back into the "
                               "exact replay path";
}

TEST(alloc_hot_path, run_batch_levels_exact_allocates_nothing_per_sample) {
    const std::size_t n_qubits = 5;
    util::rng gen(4343);
    const qml::ansatz_params params =
        qml::random_ansatz_params(n_qubits, 2, gen);
    std::vector<exec::program> family;
    family.push_back(reg_a_program(params, 1));
    family.push_back(reg_a_program(params, 2));
    const auto amplitudes = generic_amplitudes(n_qubits, 64, 77);
    const std::vector<exec::sample> samples = make_samples(amplitudes);
    const exec::statevector_backend engine(
        exec::engine_config{.sampling_mode = exec::sampling::exact});
    std::vector<double> out(samples.size() * family.size());

    engine.run_batch_levels(family, std::span(samples).first(8),
                            std::span(out).first(8 * family.size()));

    const std::uint64_t before_small = new_calls();
    engine.run_batch_levels(family, std::span(samples).first(8),
                            std::span(out).first(8 * family.size()));
    const std::uint64_t small = new_calls() - before_small;

    const std::uint64_t before_large = new_calls();
    engine.run_batch_levels(family, samples, out);
    const std::uint64_t large = new_calls() - before_large;

    EXPECT_EQ(small, large) << "per-sample allocations crept back into the "
                               "fused level replay path";
}

} // namespace
