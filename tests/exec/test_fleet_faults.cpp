// Worker-fleet fault suite: fleet-size invariance (scores IEEE == to the
// plain backend for any lane count), the requeue-once fault model
// (worker death mid-span → requeue + rejoin; second death → structured
// error naming the lane and span), registered-lane drop/redial, the
// no-workers structural failure, bounded-queue backpressure under
// concurrent clients, and churn against REAL `quorum_worker` TCP
// processes (SIGKILL mid-use, restart, rejoin).
//
// In-process cases run the worker side inline (exec::worker_session
// behind fault-injecting transports), so the whole fault model executes
// under the sanitizer job.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "exec/fleet.h"
#include "exec/registry.h"
#include "exec/remote_backend.h"
#include "exec/serialise.h"
#include "exec/tcp_transport.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "util/contracts.h"
#include "util/net.h"
#include "util/rng.h"

namespace {

using namespace quorum;

struct fleet_batch_fixture {
    qml::ansatz_params params;
    std::vector<std::vector<double>> amplitudes;

    explicit fleet_batch_fixture(std::uint64_t seed,
                                 std::size_t samples = 12) {
        util::rng gen(seed);
        params = qml::random_ansatz_params(3, 2, gen);
        amplitudes.resize(samples);
        for (auto& amps : amplitudes) {
            std::vector<double> features(7);
            for (double& f : features) {
                f = gen.uniform() / 7.0;
            }
            amps = qml::to_amplitudes(features, 3);
        }
    }

    [[nodiscard]] std::vector<exec::sample>
    make_samples(std::vector<util::rng>* gens = nullptr) const {
        std::vector<exec::sample> samples(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            samples[i].amplitudes = amplitudes[i];
            if (gens != nullptr) {
                samples[i].gen = &(*gens)[i];
            }
        }
        return samples;
    }

    [[nodiscard]] std::vector<util::rng> make_gens(std::uint64_t seed) const {
        std::vector<util::rng> gens;
        gens.reserve(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            gens.emplace_back(util::derive_seed(seed, i));
        }
        return gens;
    }
};

exec::program fleet_analytic_program(const qml::ansatz_params& params,
                                     std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_reg_a_template(params, level));
    program.readout.kind = exec::readout_kind::prep_overlap_p1;
    return program;
}

/// Shared fault plan for the in-process fleet lanes: the next
/// `kill_replies` SPAN replies (never handshake acks) are replaced by a
/// thrown transport_error, simulating the worker dying mid-span.
struct fleet_fault_plan {
    std::atomic<int> kill_replies{0};
    std::atomic<int> constructed{0};
};

class fleet_loopback_transport : public exec::wire_transport {
public:
    explicit fleet_loopback_transport(fleet_fault_plan* plan = nullptr)
        : plan_(plan) {}

    void send_message(std::span<const std::uint8_t> payload) override {
        replies_.push_back(session_.handle(payload));
    }

    [[nodiscard]] std::vector<std::uint8_t> recv_message() override {
        if (replies_.empty()) {
            throw exec::transport_error("no reply queued");
        }
        std::vector<std::uint8_t> reply = std::move(replies_.front());
        replies_.pop_front();
        const bool is_ack =
            !reply.empty() &&
            reply[0] ==
                static_cast<std::uint8_t>(exec::wire::message::hello_ack);
        if (plan_ != nullptr && !is_ack) {
            if (plan_->kill_replies.fetch_sub(1) > 0) {
                throw exec::transport_error(
                    "injected: worker died mid-span");
            }
            plan_->kill_replies.fetch_add(1);
        }
        return reply;
    }

private:
    fleet_fault_plan* plan_;
    exec::worker_session session_;
    std::deque<std::vector<std::uint8_t>> replies_;
};

exec::transport_factory
fleet_loopback_factory(fleet_fault_plan* plan = nullptr) {
    return [plan](std::size_t) -> std::unique_ptr<exec::wire_transport> {
        if (plan != nullptr) {
            ++plan->constructed;
        }
        return std::make_unique<fleet_loopback_transport>(plan);
    };
}

std::shared_ptr<exec::worker_fleet>
make_loopback_fleet(std::size_t lanes, exec::fleet_config config = {},
                    fleet_fault_plan* plan = nullptr) {
    auto fleet = std::make_shared<exec::worker_fleet>(config);
    for (std::size_t i = 0; i < lanes; ++i) {
        fleet->add_factory_lane(fleet_loopback_factory(plan),
                                "loopback #" + std::to_string(i));
    }
    fleet->wait_for_lanes(lanes, 5000);
    return fleet;
}

// --- fleet-size invariance --------------------------------------------------

TEST(FleetExecutor, ExactScoresAreFleetSizeInvariant) {
    const fleet_batch_fixture fixture(101);
    const exec::program program =
        fleet_analytic_program(fixture.params, 1);
    std::vector<double> reference(fixture.amplitudes.size());
    exec::make_executor("statevector", exec::engine_config{})
        ->run_batch(program, fixture.make_samples(), reference);

    for (const std::size_t lanes : {1u, 2u, 4u}) {
        const exec::fleet_executor engine(make_loopback_fleet(lanes));
        EXPECT_EQ(engine.name(), "fleet:statevector");
        std::vector<double> out(fixture.amplitudes.size());
        engine.run_batch(program, fixture.make_samples(), out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i])
                << "lanes=" << lanes << " sample=" << i;
        }
    }
}

TEST(FleetExecutor, SampledScoresAreFleetSizeInvariant) {
    const fleet_batch_fixture fixture(103);
    exec::fleet_config config;
    config.engine.sampling_mode = exec::sampling::binomial;
    config.engine.shots = 512;
    const exec::program program =
        fleet_analytic_program(fixture.params, 1);
    std::vector<double> reference(fixture.amplitudes.size());
    {
        const auto inner =
            exec::make_executor("statevector", config.engine);
        std::vector<util::rng> gens = fixture.make_gens(11);
        inner->run_batch(program, fixture.make_samples(&gens), reference);
    }
    for (const std::size_t lanes : {1u, 2u, 4u}) {
        const exec::fleet_executor engine(
            make_loopback_fleet(lanes, config));
        std::vector<util::rng> gens = fixture.make_gens(11);
        std::vector<double> out(fixture.amplitudes.size());
        engine.run_batch(program, fixture.make_samples(&gens), out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i])
                << "lanes=" << lanes << " sample=" << i;
        }
    }
}

TEST(FleetExecutor, LevelFamiliesMatchTheInnerBackendBitForBit) {
    const fleet_batch_fixture fixture(105, 8);
    exec::fleet_config config;
    config.engine.sampling_mode = exec::sampling::binomial;
    config.engine.shots = 128;
    const std::vector<exec::program> family = {
        fleet_analytic_program(fixture.params, 1),
        fleet_analytic_program(fixture.params, 2)};

    const auto make_level_gens = [&](std::vector<util::rng>& gens,
                                     std::vector<util::rng*>& ptrs) {
        gens.clear();
        ptrs.clear();
        for (std::size_t i = 0; i < fixture.amplitudes.size() * 2; ++i) {
            gens.emplace_back(util::derive_seed(55, i));
        }
        for (util::rng& gen : gens) {
            ptrs.push_back(&gen);
        }
    };
    std::vector<util::rng> gens;
    std::vector<util::rng*> ptrs;

    std::vector<double> reference(fixture.amplitudes.size() * 2);
    {
        const auto inner =
            exec::make_executor("statevector", config.engine);
        make_level_gens(gens, ptrs);
        std::vector<exec::sample> batch = fixture.make_samples();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            batch[i].level_gens =
                std::span<util::rng* const>(ptrs.data() + i * 2, 2);
        }
        inner->run_batch_levels(family, batch, reference);
    }
    for (const std::size_t lanes : {1u, 3u}) {
        const exec::fleet_executor engine(
            make_loopback_fleet(lanes, config));
        make_level_gens(gens, ptrs);
        std::vector<exec::sample> batch = fixture.make_samples();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            batch[i].level_gens =
                std::span<util::rng* const>(ptrs.data() + i * 2, 2);
        }
        std::vector<double> out(reference.size());
        engine.run_batch_levels(family, batch, out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i])
                << "lanes=" << lanes << " slot=" << i;
        }
    }
}

// --- fault model ------------------------------------------------------------

TEST(FleetFaults, WorkerDeathRequeuesTheSpanAndTheLaneRejoins) {
    // One injected mid-span death in a 2-lane fleet: the span is requeued
    // exactly once and re-run by a live lane (possibly the reconnected
    // one), scores stay bit-identical, and the dead lane REJOINS through
    // its factory — the fleet is back to full strength afterwards.
    const fleet_batch_fixture fixture(107);
    const exec::program program =
        fleet_analytic_program(fixture.params, 1);
    std::vector<double> reference(fixture.amplitudes.size());
    exec::make_executor("statevector", exec::engine_config{})
        ->run_batch(program, fixture.make_samples(), reference);

    fleet_fault_plan plan;
    const std::shared_ptr<exec::worker_fleet> fleet =
        make_loopback_fleet(2, {}, &plan);
    plan.kill_replies = 1;
    const exec::fleet_executor engine(fleet);
    std::vector<double> out(fixture.amplitudes.size());
    engine.run_batch(program, fixture.make_samples(), out);
    EXPECT_EQ(fleet->requeued_spans(), 1u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], reference[i]) << i;
    }
    fleet->wait_for_lanes(2, 5000); // the dead lane reconnected
    EXPECT_GE(plan.constructed.load(), 3); // 2 lanes + >= 1 rejoin
}

TEST(FleetFaults, SecondDeathIsAStructuredErrorNamingWorkerAndSpan) {
    // Every span reply dies: the single lane's span is requeued once,
    // the lane rejoins, the re-run dies again — requeue exhausted. The
    // failure must be a contract_error naming the lane label and the
    // sample span, exactly like the remote backend's fault contract.
    const fleet_batch_fixture fixture(109, 6);
    fleet_fault_plan plan;
    exec::fleet_config config;
    config.rejoin_attempts = 10;
    config.rejoin_delay_ms = 10;
    const std::shared_ptr<exec::worker_fleet> fleet =
        make_loopback_fleet(1, config, &plan);
    plan.kill_replies = 1000000;
    const exec::fleet_executor engine(fleet);
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine.run_batch(fleet_analytic_program(fixture.params, 1),
                         fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "fleet worker loopback #0"),
                  nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "samples [0, 6)"), nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "requeue exhausted"), nullptr)
            << error.what();
    }
    EXPECT_EQ(fleet->requeued_spans(), 1u);
}

TEST(FleetFaults, RegisteredLaneDeathDropsTheLaneUntilItRedials) {
    // A registered lane (worker dialed in) has no factory: when it dies
    // the lane is gone and — with nobody else live — its requeued span
    // fails structurally. "Redialing" (a fresh add_lane) restores the
    // fleet without restarting it.
    const fleet_batch_fixture fixture(111, 6);
    const exec::program program =
        fleet_analytic_program(fixture.params, 1);
    std::vector<double> reference(fixture.amplitudes.size());
    exec::make_executor("statevector", exec::engine_config{})
        ->run_batch(program, fixture.make_samples(), reference);

    fleet_fault_plan plan;
    auto fleet = std::make_shared<exec::worker_fleet>(exec::fleet_config{});
    fleet->add_lane(std::make_unique<fleet_loopback_transport>(&plan),
                    "registered #1");
    fleet->wait_for_lanes(1, 5000);
    plan.kill_replies = 1000000;

    const exec::fleet_executor engine(fleet);
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine.run_batch(program, fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "no live workers"), nullptr)
            << error.what();
    }
    EXPECT_EQ(fleet->lane_count(), 0u);

    // The worker dials back in: a fresh registered lane, same fleet.
    plan.kill_replies = 0;
    fleet->add_lane(std::make_unique<fleet_loopback_transport>(&plan),
                    "registered #2");
    fleet->wait_for_lanes(1, 5000);
    engine.run_batch(program, fixture.make_samples(), out);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], reference[i]) << i;
    }
}

TEST(FleetFaults, NoWorkersFailsStructurallyInsteadOfHanging) {
    const fleet_batch_fixture fixture(113, 4);
    const auto fleet =
        std::make_shared<exec::worker_fleet>(exec::fleet_config{});
    const exec::fleet_executor engine(fleet);
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine.run_batch(fleet_analytic_program(fixture.params, 1),
                         fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "no live workers"), nullptr)
            << error.what();
    }
}

TEST(FleetFaults, HandshakeVersionMismatchSurfacesThroughWaitForLanes) {
    /// A "worker" that acks every hello with a forged future protocol
    /// version: the lane must never go live, and the structured failure
    /// (naming the version and the lane) is reported by wait_for_lanes.
    class bad_version_transport : public exec::wire_transport {
    public:
        void send_message(std::span<const std::uint8_t> /*payload*/)
            override {}
        [[nodiscard]] std::vector<std::uint8_t> recv_message() override {
            exec::wire::writer forged;
            forged.u8(static_cast<std::uint8_t>(
                exec::wire::message::hello_ack));
            forged.u32(exec::wire::protocol_magic);
            forged.u32(exec::wire::protocol_version + 9);
            return forged.take();
        }
    };
    const auto fleet =
        std::make_shared<exec::worker_fleet>(exec::fleet_config{});
    fleet->add_lane(std::make_unique<bad_version_transport>(),
                    "future-worker");
    try {
        fleet->wait_for_lanes(1, 2000);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "protocol version"), nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "future-worker"), nullptr)
            << error.what();
    }
    EXPECT_EQ(fleet->lane_count(), 0u);
}

TEST(FleetFaults, ConfigRejectsNestingAndDegenerateBounds) {
    exec::fleet_config nested;
    nested.inner = "remote:statevector";
    EXPECT_THROW(exec::worker_fleet{nested}, util::contract_error);
    nested.inner = "fleet";
    EXPECT_THROW(exec::worker_fleet{nested}, util::contract_error);
    exec::fleet_config unbounded;
    unbounded.max_pending_spans = 0;
    EXPECT_THROW(exec::worker_fleet{unbounded}, util::contract_error);
    exec::fleet_config negative;
    negative.rejoin_attempts = -1;
    EXPECT_THROW(exec::worker_fleet{negative}, util::contract_error);
}

// --- concurrency + backpressure ---------------------------------------------

TEST(FleetStress, ConcurrentClientsAreBitIdenticalToSequentialRuns) {
    // Four client threads hammer ONE shared 2-lane fleet through a
    // deliberately tiny queue bound (2), so submissions constantly block
    // on backpressure while other batches are in flight. Every client's
    // scores must equal its own sequential reference bit for bit, and
    // the whole thing must drain without deadlock — the requeue-bypass
    // rule is what makes the bound safe.
    exec::fleet_config config;
    config.engine.sampling_mode = exec::sampling::binomial;
    config.engine.shots = 256;
    config.max_pending_spans = 2;
    const std::shared_ptr<exec::worker_fleet> fleet =
        make_loopback_fleet(2, config);
    const exec::fleet_executor engine(fleet);

    constexpr int clients = 4;
    constexpr int rounds = 3;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int client = 0; client < clients; ++client) {
        threads.emplace_back([&, client] {
            const fleet_batch_fixture fixture(
                200 + static_cast<std::uint64_t>(client));
            const exec::program program =
                fleet_analytic_program(fixture.params, 1);
            std::vector<double> reference(fixture.amplitudes.size());
            {
                const auto inner =
                    exec::make_executor("statevector", config.engine);
                std::vector<util::rng> gens = fixture.make_gens(
                    static_cast<std::uint64_t>(client) + 31);
                inner->run_batch(program, fixture.make_samples(&gens),
                                 reference);
            }
            for (int round = 0; round < rounds; ++round) {
                std::vector<util::rng> gens = fixture.make_gens(
                    static_cast<std::uint64_t>(client) + 31);
                std::vector<double> out(fixture.amplitudes.size());
                engine.run_batch(program, fixture.make_samples(&gens),
                                 out);
                for (std::size_t i = 0; i < out.size(); ++i) {
                    EXPECT_EQ(out[i], reference[i])
                        << "client=" << client << " round=" << round
                        << " sample=" << i;
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
}

// --- real TCP workers under churn -------------------------------------------

#ifdef QUORUM_WORKER_BIN

/// Spawns `quorum_worker --listen 127.0.0.1:<port>` (0 = ephemeral) and
/// parses the bound port from its announcement line.
class fleet_listen_worker {
public:
    explicit fleet_listen_worker(std::uint16_t port = 0) {
        int out_pipe[2];
        if (::pipe(out_pipe) != 0) {
            throw std::runtime_error("pipe failed");
        }
        const std::string where =
            "127.0.0.1:" + std::to_string(port);
        pid_ = ::fork();
        if (pid_ == 0) {
            ::dup2(out_pipe[1], STDOUT_FILENO);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            ::execl(QUORUM_WORKER_BIN, QUORUM_WORKER_BIN, "--listen",
                    where.c_str(), static_cast<char*>(nullptr));
            std::perror("execl quorum_worker");
            ::_exit(127);
        }
        ::close(out_pipe[1]);
        std::string line;
        char byte = 0;
        while (::read(out_pipe[0], &byte, 1) == 1 && byte != '\n') {
            line.push_back(byte);
        }
        ::close(out_pipe[0]);
        const std::string tag = "listening on 127.0.0.1:";
        const std::size_t at = line.find(tag);
        if (at == std::string::npos) {
            throw std::runtime_error(
                "worker did not announce its port: " + line);
        }
        endpoint_.host = "127.0.0.1";
        endpoint_.port = static_cast<std::uint16_t>(
            std::stoul(line.substr(at + tag.size())));
    }

    ~fleet_listen_worker() { kill_now(); }

    fleet_listen_worker(const fleet_listen_worker&) = delete;
    fleet_listen_worker& operator=(const fleet_listen_worker&) = delete;

    [[nodiscard]] const util::endpoint& where() const { return endpoint_; }
    void kill_now() {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            ::waitpid(pid_, nullptr, 0);
            pid_ = -1;
        }
    }

private:
    pid_t pid_ = -1;
    util::endpoint endpoint_;
};

TEST(FleetTcp, KilledWorkerRequeuesToSurvivorAndRejoinsAfterRestart) {
    // The full churn story over real sockets: a 2-worker TCP fleet
    // scores a batch; one worker is SIGKILLed; the next batch still
    // lands bit-identically (spans requeue to the survivor while the
    // dead lane's factory retries); the worker is restarted ON THE SAME
    // PORT (SO_REUSEADDR) and the lane rejoins; a third batch is again
    // bit-identical with the fleet back at full strength.
    const fleet_batch_fixture fixture(115);
    const exec::program program =
        fleet_analytic_program(fixture.params, 1);
    std::vector<double> reference(fixture.amplitudes.size());
    exec::make_executor("statevector", exec::engine_config{})
        ->run_batch(program, fixture.make_samples(), reference);

    auto worker_a = std::make_unique<fleet_listen_worker>();
    fleet_listen_worker worker_b;
    const std::uint16_t port_a = worker_a->where().port;
    const std::vector<util::endpoint> endpoints = {worker_a->where(),
                                                   worker_b.where()};
    exec::fleet_config config;
    config.rejoin_attempts = 100;
    config.rejoin_delay_ms = 100;
    const auto fleet = std::make_shared<exec::worker_fleet>(config);
    for (std::size_t lane = 0; lane < 2; ++lane) {
        fleet->add_factory_lane(
            exec::tcp_transport_factory(endpoints),
            endpoints[lane].str());
    }
    fleet->wait_for_lanes(2, 10000);

    const exec::fleet_executor engine(fleet);
    const auto expect_batch = [&](const char* when) {
        std::vector<double> out(fixture.amplitudes.size());
        engine.run_batch(program, fixture.make_samples(), out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i]) << when << " sample=" << i;
        }
    };

    expect_batch("healthy fleet");
    worker_a->kill_now();
    expect_batch("after SIGKILL");
    worker_a = std::make_unique<fleet_listen_worker>(port_a);
    fleet->wait_for_lanes(2, 30000);
    expect_batch("after rejoin");
}

#endif // QUORUM_WORKER_BIN

} // namespace
