// Wire-format property suite: encode -> decode -> run must equal run
// (IEEE ==) for programs, samples and engine configs; malformed payloads
// (truncated, corrupted) must fail STRUCTURALLY — util::contract_error,
// never UB (the ASan+UBSan CI job runs this suite); and the byte layout
// documented in docs/ARCHITECTURE.md must match the implementation (the
// documented example payload decodes below, byte for byte).
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/registry.h"
#include "exec/remote_backend.h"
#include "exec/serialise.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qml/swap_test.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;

exec::program analytic_program(const qml::ansatz_params& params,
                               std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_reg_a_template(params, level));
    program.readout.kind = exec::readout_kind::prep_overlap_p1;
    return program;
}

exec::program full_program(const qml::ansatz_params& params,
                           std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_template(params, level));
    program.readout.kind = exec::readout_kind::cbit_probability;
    program.readout.cbit = qml::swap_result_cbit;
    return program;
}

std::vector<std::uint8_t> encode(const exec::program& program) {
    exec::wire::writer out;
    exec::wire::encode_program(out, program);
    return out.take();
}

exec::program decode(std::span<const std::uint8_t> bytes) {
    exec::wire::reader in(bytes);
    exec::program program = exec::wire::decode_program(in);
    in.expect_done();
    return program;
}

std::vector<std::vector<double>> make_amplitudes(std::uint64_t seed,
                                                 std::size_t samples) {
    util::rng gen(seed);
    std::vector<std::vector<double>> out(samples);
    for (auto& amps : out) {
        std::vector<double> features(7);
        for (double& f : features) {
            f = gen.uniform() / 7.0;
        }
        amps = qml::to_amplitudes(features, 3);
    }
    return out;
}

TEST(WireSerialise, PrimitivesRoundTripBitExactly) {
    exec::wire::writer out;
    out.u8(0x7F);
    out.u32(0xDEADBEEFu);
    out.u64(0x0123456789ABCDEFull);
    out.f64(-0.0);
    out.f64(std::numeric_limits<double>::quiet_NaN());
    out.f64(0.1);
    out.str("quorum");
    exec::wire::reader in(out.data());
    EXPECT_EQ(in.u8(), 0x7F);
    EXPECT_EQ(in.u32(), 0xDEADBEEFu);
    EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
    const double neg_zero = in.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero)); // bit pattern, not just value
    EXPECT_TRUE(std::isnan(in.f64()));
    EXPECT_EQ(in.f64(), 0.1);
    EXPECT_EQ(in.str(), "quorum");
    in.expect_done();
}

TEST(WireSerialise, TruncatedPrimitivesThrow) {
    exec::wire::writer out;
    out.u64(42);
    const std::vector<std::uint8_t> bytes = out.take();
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        exec::wire::reader in(
            std::span<const std::uint8_t>(bytes.data(), keep));
        EXPECT_THROW((void)in.u64(), util::contract_error) << keep;
    }
    exec::wire::reader in(bytes);
    (void)in.u64();
    EXPECT_THROW(in.expect_available(1, 1), util::contract_error);
    EXPECT_NO_THROW(in.expect_done());
}

TEST(WireSerialise, ProgramRoundTripPreservesStructure) {
    util::rng gen(11);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    for (const exec::program& original :
         {analytic_program(params, 1), full_program(params, 2)}) {
        const exec::program decoded = decode(encode(original));
        EXPECT_EQ(decoded.readout.kind, original.readout.kind);
        EXPECT_EQ(decoded.readout.cbit, original.readout.cbit);
        const qsim::compiled_program& a = original.circuit;
        const qsim::compiled_program& b = decoded.circuit;
        EXPECT_EQ(b.num_qubits(), a.num_qubits());
        EXPECT_EQ(b.num_clbits(), a.num_clbits());
        ASSERT_EQ(b.slots().size(), a.slots().size());
        for (std::size_t s = 0; s < a.slots().size(); ++s) {
            EXPECT_EQ(b.slots()[s].qubits, a.slots()[s].qubits);
        }
        ASSERT_EQ(b.suffix().size(), a.suffix().size());
        // Recompiling the shipped template reproduces every precomputed
        // matrix: the whole suffix replays identically, op by op.
        EXPECT_EQ(qsim::shared_suffix_ops(a, b), a.suffix().size());
        EXPECT_EQ(b.has_fused_suffix(), a.has_fused_suffix());
        EXPECT_EQ(b.fused_unitary_count(), a.fused_unitary_count());
        EXPECT_EQ(b.measures(), a.measures());
    }
}

TEST(WireSerialise, DecodedProgramRunsIdenticallyToOriginal) {
    util::rng gen(13);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const auto amplitudes = make_amplitudes(17, 9);
    std::vector<exec::sample> batch(amplitudes.size());
    for (std::size_t i = 0; i < amplitudes.size(); ++i) {
        batch[i].amplitudes = amplitudes[i];
    }
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    for (const exec::program& original :
         {analytic_program(params, 1), full_program(params, 2)}) {
        const exec::program decoded = decode(encode(original));
        std::vector<double> expected(batch.size());
        std::vector<double> actual(batch.size());
        engine->run_batch(original, batch, expected);
        engine->run_batch(decoded, batch, actual);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(actual[i], expected[i]) << i; // IEEE ==
        }
    }
}

TEST(WireSerialise, ParameterizedPrefixRoundTripsAndRuns) {
    // A trained-QAE-shaped program: per-sample rotation angles feed the
    // leading gates (zero-parameter programs are the cases above).
    qsim::circuit c(2, 1);
    const qsim::qubit_t reg[] = {0, 1};
    const double amps[] = {1.0, 0.0, 0.0, 0.0};
    c.initialize(reg, amps);
    c.ry(0.0, 0).ry(0.0, 1).cx(0, 1).measure(1, 0);
    qsim::compile_options opt;
    opt.parameterized_ops = 2;
    exec::program original;
    original.circuit = qsim::compiled_program::compile(c, opt);
    original.readout.kind = exec::readout_kind::cbit_probability;
    original.readout.cbit = 0;
    const exec::program decoded = decode(encode(original));
    EXPECT_EQ(decoded.circuit.prefix_param_count(),
              original.circuit.prefix_param_count());

    const double sample_amps[] = {0.6, 0.8, 0.0, 0.0};
    const double sample_params[] = {0.3, -1.2};
    exec::sample s;
    s.amplitudes = sample_amps;
    s.prefix_params = sample_params;
    const exec::sample batch[] = {s};
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    double expected = 0.0;
    double actual = 0.0;
    engine->run_batch(original, batch, std::span<double>(&expected, 1));
    engine->run_batch(decoded, batch, std::span<double>(&actual, 1));
    EXPECT_EQ(actual, expected);
}

TEST(WireSerialise, EngineConfigRoundTripsTheNoiseModel) {
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 4096;
    config.noise = qsim::noise_model::ibm_brisbane_median();
    config.shards = 7; // must NOT travel: workers run un-sharded

    exec::wire::writer out;
    exec::wire::encode_engine_config(out, config);
    exec::wire::reader in(out.data());
    const exec::engine_config decoded =
        exec::wire::decode_engine_config(in);
    in.expect_done();

    EXPECT_EQ(decoded.sampling_mode, config.sampling_mode);
    EXPECT_EQ(decoded.shots, config.shots);
    EXPECT_EQ(decoded.shards, 0u);
    EXPECT_EQ(decoded.noise.depolarizing_table(),
              config.noise.depolarizing_table());
    EXPECT_EQ(decoded.noise.duration_table(),
              config.noise.duration_table());
    EXPECT_EQ(decoded.noise.thermal().t1_us, config.noise.thermal().t1_us);
    EXPECT_EQ(decoded.noise.thermal().t2_us, config.noise.thermal().t2_us);
    EXPECT_EQ(decoded.noise.readout().p1_given_0,
              config.noise.readout().p1_given_0);
    EXPECT_EQ(decoded.noise.readout().p0_given_1,
              config.noise.readout().p0_given_1);
    EXPECT_EQ(decoded.noise.measure_duration_ns(),
              config.noise.measure_duration_ns());
}

TEST(WireSerialise, SampleBlockRoundTripsAmplitudesParamsAndStreams) {
    const auto amplitudes = make_amplitudes(23, 4);
    std::vector<util::rng> gens;
    for (std::size_t i = 0; i < amplitudes.size(); ++i) {
        gens.emplace_back(util::derive_seed(5, i));
    }
    // Advance one stream so the snapshot captures mid-stream state, not
    // just the seed.
    (void)gens[2].uniform();
    std::vector<exec::sample> batch(amplitudes.size());
    for (std::size_t i = 0; i < amplitudes.size(); ++i) {
        batch[i].amplitudes = amplitudes[i];
        batch[i].gen = &gens[i];
    }

    exec::wire::writer out;
    exec::wire::encode_samples(out, batch, 0, /*with_rng=*/true);
    exec::wire::reader in(out.data());
    exec::wire::sample_block block = exec::wire::decode_samples(in, 0);
    in.expect_done();

    ASSERT_EQ(block.samples.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(block.samples[i].amplitudes.size(),
                  batch[i].amplitudes.size());
        for (std::size_t a = 0; a < batch[i].amplitudes.size(); ++a) {
            EXPECT_EQ(block.samples[i].amplitudes[a],
                      batch[i].amplitudes[a]);
        }
        // The reconstructed stream resumes exactly where the original
        // was captured: the next draws agree bit for bit.
        util::rng original = gens[i]; // copy: keep the source pristine
        util::rng* decoded = block.samples[i].gen;
        ASSERT_NE(decoded, nullptr);
        for (int d = 0; d < 5; ++d) {
            EXPECT_EQ(decoded->uniform(), original.uniform());
        }
    }
}

TEST(WireSerialise, MultiLevelStreamsRoundTripPerLevel) {
    const auto amplitudes = make_amplitudes(29, 2);
    std::vector<util::rng> gens;
    std::vector<util::rng*> ptrs;
    gens.reserve(amplitudes.size() * 3);
    for (std::size_t i = 0; i < amplitudes.size() * 3; ++i) {
        gens.emplace_back(util::derive_seed(9, i));
    }
    for (util::rng& gen : gens) {
        ptrs.push_back(&gen);
    }
    std::vector<exec::sample> batch(amplitudes.size());
    for (std::size_t i = 0; i < amplitudes.size(); ++i) {
        batch[i].amplitudes = amplitudes[i];
        batch[i].level_gens =
            std::span<util::rng* const>(ptrs.data() + i * 3, 3);
    }
    exec::wire::writer out;
    exec::wire::encode_samples(out, batch, 3, /*with_rng=*/true);
    exec::wire::reader in(out.data());
    exec::wire::sample_block block = exec::wire::decode_samples(in, 3);
    in.expect_done();
    ASSERT_EQ(block.samples.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(block.samples[i].level_gens.size(), 3u);
        for (std::size_t k = 0; k < 3; ++k) {
            util::rng original = *batch[i].level_gens[k];
            EXPECT_EQ(block.samples[i].level_gens[k]->uniform(),
                      original.uniform());
        }
    }
    // Level-count mismatch between block and family is structural.
    exec::wire::reader again(out.data());
    EXPECT_THROW((void)exec::wire::decode_samples(again, 2),
                 util::contract_error);
}

TEST(WireSerialise, EmptyBatchRoundTrips) {
    exec::wire::writer out;
    exec::wire::encode_samples(out, {}, 0, /*with_rng=*/false);
    exec::wire::reader in(out.data());
    const exec::wire::sample_block block =
        exec::wire::decode_samples(in, 0);
    in.expect_done();
    EXPECT_TRUE(block.samples.empty());
}

TEST(WireSerialise, TruncatedProgramPayloadsFailStructurally) {
    util::rng gen(31);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const std::vector<std::uint8_t> bytes =
        encode(analytic_program(params, 1));
    // Every prefix of the payload must throw (never UB, never hang). Walk
    // a stride for speed plus the boundary cases.
    for (std::size_t keep = 0; keep < bytes.size();
         keep += (keep < 64 ? 1 : 7)) {
        exec::wire::reader in(
            std::span<const std::uint8_t>(bytes.data(), keep));
        EXPECT_THROW((void)exec::wire::decode_program(in),
                     util::contract_error)
            << "prefix length " << keep;
    }
    exec::wire::reader full(bytes);
    EXPECT_NO_THROW((void)exec::wire::decode_program(full));
}

TEST(WireSerialise, CorruptedProgramPayloadsNeverMisbehave) {
    util::rng gen(37);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const std::vector<std::uint8_t> bytes =
        encode(full_program(params, 1));
    // Flipping any byte must either decode (the byte was value payload,
    // e.g. a rotation angle) or throw contract_error — nothing else. The
    // sanitizer job turns latent UB here into a failure.
    std::size_t rejected = 0;
    for (std::size_t at = 0; at < bytes.size();
         at += (at < 96 ? 1 : 5)) {
        std::vector<std::uint8_t> corrupt = bytes;
        corrupt[at] ^= 0xFF;
        exec::wire::reader in(corrupt);
        try {
            (void)exec::wire::decode_program(in);
            in.expect_done();
        } catch (const util::contract_error&) {
            ++rejected;
        }
    }
    EXPECT_GT(rejected, 0u); // structural fields do get hit
}

TEST(WireSerialise, AbsurdCountsAreRejectedBeforeAllocation) {
    // A count field larger than the message can possibly back must fail
    // up front (expect_available), not attempt a giant allocation.
    exec::wire::writer out;
    out.u32(0xFFFFFFFFu); // "4 billion qubits follow"
    exec::wire::reader in(out.data());
    EXPECT_THROW(in.expect_available(in.u32(), 4), util::contract_error);

    // A zero-shape sample block (no amplitudes, no params, no rng — one
    // marker byte per sample) cannot smuggle a giant count either: the
    // record markers bound the count by the message size.
    exec::wire::writer samples;
    samples.u64(std::uint64_t{1} << 40); // sample count: absurd
    samples.u64(0);                      // amplitudes per sample
    samples.u64(0);                      // params per sample
    samples.u32(0);                      // levels
    samples.u8(0);                       // has-rng: no
    exec::wire::reader sin(samples.data());
    EXPECT_THROW((void)exec::wire::decode_samples(sin, 0),
                 util::contract_error);

    // Oversized register sizes are rejected by decode_program.
    exec::wire::writer prog;
    prog.u8(static_cast<std::uint8_t>(exec::readout_kind::cbit_probability));
    prog.u32(0);  // cbit
    prog.u32(0);  // readout qubits
    prog.u32(60); // num_qubits: out of range
    prog.u32(0);
    exec::wire::reader pin(prog.data());
    EXPECT_THROW((void)exec::wire::decode_program(pin),
                 util::contract_error);
}

TEST(WireSerialise, DocumentedHelloPayloadDecodes) {
    // The exact example payload from docs/ARCHITECTURE.md ("Wire format"
    // section). If this test breaks, the implementation changed — bump
    // protocol_version AND update the documented bytes.
    const std::uint8_t doc_payload[] = {
        0x01,                   // message type: hello
        0x51, 0x52, 0x4D, 0x57, // magic "QRMW"
        0x02, 0x00, 0x00, 0x00, // protocol version 2
        0x0B, 0x00, 0x00, 0x00, // inner name length: 11
        's', 't', 'a', 't', 'e', 'v', 'e', 'c', 't', 'o', 'r',
        0x00,                                           // sampling: exact
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // shots: 0
        0x00, 0x00, 0x00, 0x00, // depolarizing entries: 0
        0x00, 0x00, 0x00, 0x00, // duration entries: 0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // t1_us: 0.0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // t2_us: 0.0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // P(1|0): 0.0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // P(0|1): 0.0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // measure ns
    };
    exec::worker_session session;
    const std::vector<std::uint8_t> reply = session.handle(
        std::span<const std::uint8_t>(doc_payload, sizeof(doc_payload)));
    // Expected reply, also as documented: hello_ack + magic + version.
    const std::uint8_t doc_reply[] = {
        0x02,                   // message type: hello_ack
        0x51, 0x52, 0x4D, 0x57, // magic "QRMW"
        0x02, 0x00, 0x00, 0x00, // protocol version 2
    };
    ASSERT_EQ(reply.size(), sizeof(doc_reply));
    EXPECT_EQ(std::memcmp(reply.data(), doc_reply, sizeof(doc_reply)), 0);
}

TEST(WireSerialise, DocumentedShardWorkLayoutMatchesEncoder) {
    // docs/ARCHITECTURE.md documents the span header as four u64 fields
    // (shard, first, count, rng_seed), little-endian.
    exec::shard_work work;
    work.shard = 2;
    work.first = 16;
    work.count = 8;
    work.rng_seed = 0x0102030405060708ull;
    exec::wire::writer out;
    exec::wire::encode_shard_work(out, work);
    const std::uint8_t doc_bytes[] = {
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // shard
        0x10, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // first
        0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // count
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // rng_seed
    };
    ASSERT_EQ(out.data().size(), sizeof(doc_bytes));
    EXPECT_EQ(
        std::memcmp(out.data().data(), doc_bytes, sizeof(doc_bytes)), 0);
}

// --- worker_session protocol edges ------------------------------------------

std::string error_text(const std::vector<std::uint8_t>& reply) {
    exec::wire::reader in(reply);
    EXPECT_EQ(in.u8(), static_cast<std::uint8_t>(exec::wire::message::error));
    return in.str();
}

std::vector<std::uint8_t> make_hello_payload(std::uint32_t version,
                                             const std::string& inner =
                                                 "statevector") {
    exec::wire::writer out;
    out.u8(static_cast<std::uint8_t>(exec::wire::message::hello));
    out.u32(exec::wire::protocol_magic);
    out.u32(version);
    out.str(inner);
    exec::wire::encode_engine_config(out, exec::engine_config{});
    return out.take();
}

TEST(WorkerSession, RunBeforeHelloIsAnError) {
    exec::worker_session session;
    exec::wire::writer out;
    out.u8(static_cast<std::uint8_t>(exec::wire::message::run_span));
    const std::string text = error_text(session.handle(out.data()));
    EXPECT_NE(text.find("before hello"), std::string::npos) << text;
}

TEST(WorkerSession, VersionMismatchIsAnErrorNamingBothVersions) {
    exec::worker_session session;
    const std::string text = error_text(
        session.handle(make_hello_payload(exec::wire::protocol_version + 7)));
    EXPECT_NE(text.find("version mismatch"), std::string::npos) << text;
    EXPECT_NE(text.find(std::to_string(exec::wire::protocol_version + 7)),
              std::string::npos)
        << text;
}

TEST(WorkerSession, BadMagicAndUnknownTypesAreErrors) {
    exec::worker_session session;
    exec::wire::writer bad_magic;
    bad_magic.u8(static_cast<std::uint8_t>(exec::wire::message::hello));
    bad_magic.u32(0x12345678u);
    bad_magic.u32(exec::wire::protocol_version);
    EXPECT_NE(error_text(session.handle(bad_magic.data())).find("magic"),
              std::string::npos);

    exec::wire::writer unknown;
    unknown.u8(0x7E);
    EXPECT_NE(
        error_text(session.handle(unknown.data())).find("message type"),
        std::string::npos);

    EXPECT_NE(error_text(session.handle({})).find("truncated"),
              std::string::npos);
}

TEST(WorkerSession, WrapperEngineNamesAreRejectedAtHello) {
    // A worker must never host a wrapper engine: inner = "remote" would
    // fork grandchild workers, "sharded" would spin an all-cores pool —
    // a single corrupted hello byte must not be able to do either.
    for (const char* inner : {"remote", "sharded", "sharded:statevector",
                              ""}) {
        exec::worker_session session;
        const std::string text = error_text(session.handle(
            make_hello_payload(exec::wire::protocol_version, inner)));
        EXPECT_NE(text.find("plain backend"), std::string::npos)
            << inner << ": " << text;
    }
}

TEST(WorkerSession, ZeroSampleSpanReturnsEmptyResult) {
    exec::worker_session session;
    (void)session.handle(make_hello_payload(exec::wire::protocol_version));
    util::rng gen(41);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const exec::program program = analytic_program(params, 1);
    exec::wire::writer request;
    request.u8(static_cast<std::uint8_t>(exec::wire::message::run_span));
    exec::wire::encode_shard_work(request, exec::shard_work{});
    exec::wire::writer block;
    exec::wire::encode_program(block, program);
    request.u32(static_cast<std::uint32_t>(block.data().size()));
    request.bytes(block.data());
    exec::wire::encode_samples(request, {}, 0, false);
    const std::vector<std::uint8_t> reply =
        session.handle(request.data());
    exec::wire::reader in(reply);
    EXPECT_EQ(in.u8(),
              static_cast<std::uint8_t>(exec::wire::message::result));
    EXPECT_EQ(in.u64(), 0u);
    in.expect_done();
}

TEST(WorkerSession, ShutdownFlipsTheFlagAndRepliesNothing) {
    exec::worker_session session;
    exec::wire::writer out;
    out.u8(static_cast<std::uint8_t>(exec::wire::message::shutdown));
    EXPECT_FALSE(session.shutdown_requested());
    EXPECT_TRUE(session.handle(out.data()).empty());
    EXPECT_TRUE(session.shutdown_requested());
}

} // namespace
