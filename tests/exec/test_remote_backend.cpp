// Remote-backend property suite: worker-count invariance (remote scores
// IEEE == to the plain inner backend for any worker count, in every
// mode), registry/spec handling, and the fault model — worker death is
// restarted + requeued once, persistent death / malformed replies /
// version mismatches surface as structured contract_errors naming the
// worker and its sample span.
//
// Most tests drive the protocol through IN-PROCESS transports (a
// loopback that feeds exec::worker_session directly, and fault-injecting
// wrappers around it), so every path runs under the sanitizer job; a few
// spawn REAL quorum_worker processes via the build-tree binary.
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "exec/process_transport.h"
#include "exec/registry.h"
#include "exec/remote_backend.h"
#include "exec/serialise.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qml/swap_test.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;

constexpr std::size_t worker_counts[] = {1, 2, 4};

struct batch_fixture {
    qml::ansatz_params params;
    std::vector<std::vector<double>> amplitudes;

    explicit batch_fixture(std::uint64_t seed, std::size_t samples = 12) {
        util::rng gen(seed);
        params = qml::random_ansatz_params(3, 2, gen);
        amplitudes.resize(samples);
        for (auto& amps : amplitudes) {
            std::vector<double> features(7);
            for (double& f : features) {
                f = gen.uniform() / 7.0;
            }
            amps = qml::to_amplitudes(features, 3);
        }
    }

    [[nodiscard]] std::vector<exec::sample>
    make_samples(std::vector<util::rng>* gens = nullptr) const {
        std::vector<exec::sample> samples(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            samples[i].amplitudes = amplitudes[i];
            if (gens != nullptr) {
                samples[i].gen = &(*gens)[i];
            }
        }
        return samples;
    }

    [[nodiscard]] std::vector<util::rng> make_gens(std::uint64_t seed) const {
        std::vector<util::rng> gens;
        gens.reserve(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            gens.emplace_back(util::derive_seed(seed, i));
        }
        return gens;
    }
};

exec::program analytic_program(const qml::ansatz_params& params,
                               std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_reg_a_template(params, level));
    program.readout.kind = exec::readout_kind::prep_overlap_p1;
    return program;
}

exec::program full_program(const qml::ansatz_params& params,
                           std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_template(params, level));
    program.readout.kind = exec::readout_kind::cbit_probability;
    program.readout.cbit = qml::swap_result_cbit;
    return program;
}

/// In-process transport: runs the worker side (exec::worker_session)
/// inline, so the full protocol executes without processes.
class loopback_transport : public exec::wire_transport {
public:
    void send_message(std::span<const std::uint8_t> payload) override {
        replies_.push_back(session_.handle(payload));
    }

    [[nodiscard]] std::vector<std::uint8_t> recv_message() override {
        if (replies_.empty()) {
            throw exec::transport_error("no reply queued");
        }
        std::vector<std::uint8_t> reply = std::move(replies_.front());
        replies_.pop_front();
        return reply;
    }

private:
    exec::worker_session session_;
    std::deque<std::vector<std::uint8_t>> replies_;
};

exec::transport_factory loopback_factory(int* constructed = nullptr) {
    return [constructed](std::size_t) -> std::unique_ptr<exec::wire_transport> {
        if (constructed != nullptr) {
            ++*constructed;
        }
        return std::make_unique<loopback_transport>();
    };
}

/// Runs the batch through remote:<inner> (loopback workers) at every
/// worker count and asserts bitwise equality with the plain inner
/// backend — the same property the sharded suite enforces in-process.
void expect_worker_invariant(const batch_fixture& fixture,
                             const exec::program& program,
                             const std::string& inner,
                             exec::engine_config config, bool stochastic) {
    std::vector<double> reference(fixture.amplitudes.size());
    {
        config.shards = 1;
        const auto engine = exec::make_executor(inner, config);
        std::vector<util::rng> gens = fixture.make_gens(99);
        engine->run_batch(
            program, fixture.make_samples(stochastic ? &gens : nullptr),
            reference);
    }
    for (const std::size_t workers : worker_counts) {
        config.shards = workers;
        const exec::remote_backend engine(config, inner,
                                          loopback_factory());
        std::vector<util::rng> gens = fixture.make_gens(99);
        std::vector<double> out(fixture.amplitudes.size());
        engine.run_batch(
            program, fixture.make_samples(stochastic ? &gens : nullptr),
            out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i])
                << "workers=" << workers << " sample=" << i;
        }
    }
}

TEST(RemoteBackend, ExactModeIsBitIdenticalForAnyWorkerCount) {
    const batch_fixture fixture(61);
    expect_worker_invariant(fixture, analytic_program(fixture.params, 1),
                            "statevector", exec::engine_config{},
                            /*stochastic=*/false);
    expect_worker_invariant(fixture, full_program(fixture.params, 2),
                            "statevector", exec::engine_config{},
                            /*stochastic=*/false);
}

TEST(RemoteBackend, SampledModeIsBitIdenticalForAnyWorkerCount) {
    const batch_fixture fixture(63);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 512;
    expect_worker_invariant(fixture, analytic_program(fixture.params, 1),
                            "statevector", config, /*stochastic=*/true);
}

TEST(RemoteBackend, PerShotModeIsBitIdenticalForAnyWorkerCount) {
    const batch_fixture fixture(65, 6);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::per_shot;
    config.shots = 64;
    expect_worker_invariant(fixture, full_program(fixture.params, 1),
                            "statevector", config, /*stochastic=*/true);
}

TEST(RemoteBackend, NoisyModeIsBitIdenticalForAnyWorkerCount) {
    const batch_fixture fixture(67, 5);
    exec::engine_config config;
    config.noise = qsim::noise_model::ibm_brisbane_median();
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 256;
    expect_worker_invariant(fixture, full_program(fixture.params, 1),
                            "density", config, /*stochastic=*/true);
}

TEST(RemoteBackend, LevelFamiliesMatchTheInnerBackendBitForBit) {
    const batch_fixture fixture(69, 8);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 128;
    const std::vector<exec::program> family = {
        analytic_program(fixture.params, 1),
        analytic_program(fixture.params, 2)};

    const auto make_level_gens = [&](std::vector<util::rng>& gens,
                                     std::vector<util::rng*>& ptrs) {
        gens.clear();
        ptrs.clear();
        for (std::size_t i = 0; i < fixture.amplitudes.size() * 2; ++i) {
            gens.emplace_back(util::derive_seed(77, i));
        }
        for (util::rng& gen : gens) {
            ptrs.push_back(&gen);
        }
    };
    std::vector<util::rng> gens;
    std::vector<util::rng*> ptrs;

    std::vector<double> reference(fixture.amplitudes.size() * 2);
    {
        config.shards = 1;
        const auto inner = exec::make_executor("statevector", config);
        make_level_gens(gens, ptrs);
        std::vector<exec::sample> batch = fixture.make_samples();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            batch[i].level_gens =
                std::span<util::rng* const>(ptrs.data() + i * 2, 2);
        }
        inner->run_batch_levels(family, batch, reference);
    }
    for (const std::size_t workers : worker_counts) {
        config.shards = workers;
        const exec::remote_backend engine(config, "statevector",
                                          loopback_factory());
        make_level_gens(gens, ptrs);
        std::vector<exec::sample> batch = fixture.make_samples();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            batch[i].level_gens =
                std::span<util::rng* const>(ptrs.data() + i * 2, 2);
        }
        std::vector<double> out(reference.size());
        engine.run_batch_levels(family, batch, out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i])
                << "workers=" << workers << " slot=" << i;
        }
    }
}

// --- fault injection --------------------------------------------------------

/// Shared fault plan: which global recv call should throw (simulating
/// the worker dying before its reply arrives), or whether replies should
/// be replaced with garbage / a forged handshake.
struct fault_plan {
    int recv_calls = 0;
    int die_on_recv_call = 0; ///< 1-based global recv index; 0 = never
    int garbage_on_recv_call = 0; ///< garble ONE reply by global index
    bool die_always = false;
    bool forge_bad_version = false;
    bool garbage_replies = false;
    int constructed = 0;
};

class faulty_transport : public exec::wire_transport {
public:
    explicit faulty_transport(fault_plan* plan) : plan_(plan) {}

    void send_message(std::span<const std::uint8_t> payload) override {
        if (plan_->die_always) {
            throw exec::transport_error("injected: worker is gone");
        }
        replies_.push_back(session_.handle(payload));
    }

    [[nodiscard]] std::vector<std::uint8_t> recv_message() override {
        ++plan_->recv_calls;
        if (plan_->die_always ||
            plan_->recv_calls == plan_->die_on_recv_call) {
            throw exec::transport_error("injected: worker died mid-span");
        }
        if (replies_.empty()) {
            throw exec::transport_error("no reply queued");
        }
        std::vector<std::uint8_t> reply = std::move(replies_.front());
        replies_.pop_front();
        if (plan_->forge_bad_version &&
            !reply.empty() &&
            reply[0] ==
                static_cast<std::uint8_t>(exec::wire::message::hello_ack)) {
            exec::wire::writer forged;
            forged.u8(
                static_cast<std::uint8_t>(exec::wire::message::hello_ack));
            forged.u32(exec::wire::protocol_magic);
            forged.u32(exec::wire::protocol_version + 9);
            return forged.take();
        }
        if ((plan_->garbage_replies ||
             plan_->recv_calls == plan_->garbage_on_recv_call) &&
            !reply.empty() &&
            reply[0] !=
                static_cast<std::uint8_t>(exec::wire::message::hello_ack)) {
            return {0x7C, 0xDE, 0xAD};
        }
        return reply;
    }

private:
    fault_plan* plan_;
    exec::worker_session session_;
    std::deque<std::vector<std::uint8_t>> replies_;
};

exec::transport_factory faulty_factory(fault_plan* plan) {
    return [plan](std::size_t) -> std::unique_ptr<exec::wire_transport> {
        ++plan->constructed;
        return std::make_unique<faulty_transport>(plan);
    };
}

TEST(RemoteBackend, WorkerDeathIsRestartedAndTheSpanRequeued) {
    const batch_fixture fixture(71);
    std::vector<double> reference(fixture.amplitudes.size());
    exec::make_executor("statevector", exec::engine_config{})
        ->run_batch(analytic_program(fixture.params, 1),
                    fixture.make_samples(), reference);

    fault_plan plan;
    // Recv order per worker: hello_ack (1, 2) then span replies (3, 4).
    // Kill the first span reply: worker 0 dies mid-span, is restarted
    // (fresh handshake) and its span is requeued — scores unharmed.
    plan.die_on_recv_call = 3;
    exec::engine_config config;
    config.shards = 2;
    const exec::remote_backend engine(config, "statevector",
                                      faulty_factory(&plan));
    std::vector<double> out(fixture.amplitudes.size());
    engine.run_batch(analytic_program(fixture.params, 1),
                     fixture.make_samples(), out);
    EXPECT_EQ(plan.constructed, 3); // 2 workers + 1 restart
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], reference[i]) << i;
    }
}

TEST(RemoteBackend, PersistentWorkerDeathIsAStructuredError) {
    const batch_fixture fixture(73, 6);
    fault_plan plan;
    plan.die_always = true;
    exec::engine_config config;
    config.shards = 2;
    const exec::remote_backend engine(config, "statevector",
                                      faulty_factory(&plan));
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine.run_batch(analytic_program(fixture.params, 1),
                         fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "remote worker "), nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "samples ["), nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "restart exhausted"), nullptr)
            << error.what();
    }
}

TEST(RemoteBackend, MalformedRepliesAreStructuredErrorsWithoutRetry) {
    const batch_fixture fixture(75, 6);
    fault_plan plan;
    plan.garbage_replies = true;
    exec::engine_config config;
    config.shards = 1;
    const exec::remote_backend engine(config, "statevector",
                                      faulty_factory(&plan));
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine.run_batch(analytic_program(fixture.params, 1),
                         fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "remote worker 0"), nullptr)
            << error.what();
        EXPECT_NE(std::strstr(error.what(), "unexpected reply type"),
                  nullptr)
            << error.what();
    }
    EXPECT_EQ(plan.constructed, 1); // protocol corruption: no restart
}

TEST(RemoteBackend, FailedBatchCannotLeakStaleRepliesIntoTheNext) {
    // With 2 workers, both spans are in flight when span 0's reply turns
    // out garbled and the batch fails — worker 1's reply is still
    // unread. The backend must reset the plan's lanes on failure, so a
    // FOLLOW-UP batch gets fresh workers and correct values, not worker
    // 1's stale batch-1 reply (which has the right count and would be
    // accepted silently).
    const batch_fixture fixture(85);
    std::vector<double> reference(fixture.amplitudes.size());
    exec::make_executor("statevector", exec::engine_config{})
        ->run_batch(analytic_program(fixture.params, 1),
                    fixture.make_samples(), reference);

    fault_plan plan;
    // Global recv order: hello_ack (1, 2), then span replies (3, 4).
    plan.garbage_on_recv_call = 3;
    exec::engine_config config;
    config.shards = 2;
    const exec::remote_backend engine(config, "statevector",
                                      faulty_factory(&plan));
    std::vector<double> out(fixture.amplitudes.size(), -1.0);
    EXPECT_THROW(engine.run_batch(analytic_program(fixture.params, 1),
                                  fixture.make_samples(), out),
                 util::contract_error);
    engine.run_batch(analytic_program(fixture.params, 1),
                     fixture.make_samples(), out);
    EXPECT_EQ(plan.constructed, 4); // both lanes re-spawned after failure
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], reference[i]) << i;
    }
}

TEST(RemoteBackend, HandshakeVersionMismatchIsAStructuredError) {
    const batch_fixture fixture(77, 4);
    fault_plan plan;
    plan.forge_bad_version = true;
    exec::engine_config config;
    config.shards = 1;
    const exec::remote_backend engine(config, "statevector",
                                      faulty_factory(&plan));
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine.run_batch(analytic_program(fixture.params, 1),
                         fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "protocol version"), nullptr)
            << error.what();
    }
}

TEST(RemoteBackend, EmptyBatchesNeverTouchATransport) {
    exec::engine_config config;
    config.shards = 2;
    const exec::remote_backend engine(
        config, "statevector",
        [](std::size_t) -> std::unique_ptr<exec::wire_transport> {
            ADD_FAILURE() << "no transport should be created";
            return nullptr;
        });
    const batch_fixture fixture(79, 1);
    const exec::program program = analytic_program(fixture.params, 1);
    engine.run_batch(program, {}, {});
}

// --- registry / config integration ------------------------------------------

TEST(RemoteBackend, RegistryResolvesRemoteSpecs) {
    EXPECT_TRUE(exec::is_backend_registered("remote"));
    EXPECT_TRUE(exec::is_backend_registered("remote:statevector"));
    EXPECT_TRUE(exec::is_backend_registered("remote:density"));
    EXPECT_FALSE(exec::is_backend_registered("remote:bogus"));
    EXPECT_FALSE(exec::is_backend_registered("remote:remote"));
    EXPECT_FALSE(exec::is_backend_registered("remote:sharded"));
    EXPECT_THROW((void)exec::parse_backend_spec("remote:"),
                 util::contract_error);
    EXPECT_THROW((void)exec::parse_backend_spec("remote:remote"),
                 util::contract_error);
    EXPECT_THROW((void)exec::parse_backend_spec("remote:sharded:x"),
                 util::contract_error);
    EXPECT_THROW((void)exec::make_executor("remote:bogus",
                                           exec::engine_config{}),
                 util::contract_error);

    const exec::backend_spec composite =
        exec::parse_backend_spec("remote:density");
    EXPECT_EQ(composite.name, "remote");
    EXPECT_EQ(composite.inner, "density");

    exec::engine_config config;
    config.shards = 2;
    const auto bare = exec::make_executor("remote", config);
    EXPECT_EQ(bare->name(), "remote:statevector");
    const auto dense = exec::make_executor("remote:density", config);
    EXPECT_EQ(dense->name(), "remote:density");
    EXPECT_TRUE(dense->supports(exec::readout_kind::cbit_probability));
    EXPECT_FALSE(dense->supports(exec::readout_kind::prep_overlap_p1));
}

TEST(RemoteBackend, WorkerCountResolvesAndClamps) {
    exec::engine_config config;
    config.shards = 3;
    const exec::remote_backend engine(config, "statevector",
                                      loopback_factory());
    EXPECT_EQ(engine.worker_count(), 3u);

    config.shards = 0;
    const exec::remote_backend defaulted(config, "statevector",
                                         loopback_factory());
    EXPECT_GE(defaulted.worker_count(), 1u);

    config.shards = std::numeric_limits<std::size_t>::max();
    const exec::remote_backend clamped(config, "statevector",
                                       loopback_factory());
    EXPECT_EQ(clamped.worker_count(), exec::remote_backend::max_workers);
}

TEST(RemoteBackend, ConfigResolvesRemoteAutoByMode) {
    core::quorum_config config;
    config.backend = "remote";
    EXPECT_EQ(config.resolved_backend(), "remote:statevector");
    config.backend = "remote:auto";
    config.mode = core::exec_mode::noisy;
    EXPECT_EQ(config.resolved_backend(), "remote:density");
    config.backend = "remote:density";
    EXPECT_EQ(config.resolved_backend(), "remote:density");
}

TEST(RemoteBackend, ConstructionValidatesTheInnerBackendLocally) {
    exec::engine_config config;
    config.sampling_mode = exec::sampling::per_shot;
    config.shots = 16;
    // per_shot is unsupported by the density engine: the local probe
    // rejects the pair at CONSTRUCTION (= config validation) time, no
    // worker involved.
    EXPECT_THROW(exec::remote_backend(config, "density",
                                      loopback_factory()),
                 std::exception);
    EXPECT_THROW(exec::remote_backend(exec::engine_config{}, "bogus",
                                      loopback_factory()),
                 util::contract_error);
    EXPECT_THROW(exec::remote_backend(exec::engine_config{}, "remote",
                                      loopback_factory()),
                 util::contract_error);
}

// --- real worker processes --------------------------------------------------

TEST(RemoteBackend, DefaultWorkerBinaryHonoursTheEnvironment) {
    const char* old = std::getenv("QUORUM_WORKER");
    const std::string saved = old == nullptr ? "" : old;
    ::setenv("QUORUM_WORKER", "/tmp/some_worker", 1);
    EXPECT_EQ(exec::default_worker_binary(), "/tmp/some_worker");
    if (old == nullptr) {
        ::unsetenv("QUORUM_WORKER");
    } else {
        ::setenv("QUORUM_WORKER", saved.c_str(), 1);
    }
}

#ifdef QUORUM_WORKER_BIN

class worker_env : public ::testing::Test {
protected:
    void SetUp() override {
        const char* old = std::getenv("QUORUM_WORKER");
        saved_ = old == nullptr ? "" : old;
        had_ = old != nullptr;
        ::setenv("QUORUM_WORKER", QUORUM_WORKER_BIN, 1);
    }
    void TearDown() override {
        if (had_) {
            ::setenv("QUORUM_WORKER", saved_.c_str(), 1);
        } else {
            ::unsetenv("QUORUM_WORKER");
        }
    }

private:
    std::string saved_;
    bool had_ = false;
};

TEST_F(worker_env, RealWorkerProcessesMatchThePlainBackend) {
    const batch_fixture fixture(81);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 256;
    std::vector<double> reference(fixture.amplitudes.size());
    {
        const auto inner = exec::make_executor("statevector", config);
        std::vector<util::rng> gens = fixture.make_gens(3);
        inner->run_batch(analytic_program(fixture.params, 1),
                         fixture.make_samples(&gens), reference);
    }
    config.shards = 2;
    const auto engine = exec::make_executor("remote:statevector", config);
    for (int repeat = 0; repeat < 2; ++repeat) { // 2nd run: program cache
        std::vector<util::rng> gens = fixture.make_gens(3);
        std::vector<double> out(fixture.amplitudes.size());
        engine->run_batch(analytic_program(fixture.params, 1),
                          fixture.make_samples(&gens), out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i]) << "repeat=" << repeat << " "
                                            << i;
        }
    }
}

TEST_F(worker_env, MissingWorkerBinarySurfacesAsAStructuredError) {
    ::setenv("QUORUM_WORKER", "/nonexistent/quorum_worker", 1);
    const batch_fixture fixture(83, 4);
    exec::engine_config config;
    config.shards = 1;
    const auto engine = exec::make_executor("remote:statevector", config);
    std::vector<double> out(fixture.amplitudes.size());
    try {
        engine->run_batch(analytic_program(fixture.params, 1),
                          fixture.make_samples(), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "remote worker 0"), nullptr)
            << error.what();
    }
}

#endif // QUORUM_WORKER_BIN

} // namespace
