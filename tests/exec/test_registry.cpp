#include <algorithm>

#include <gtest/gtest.h>

#include "exec/registry.h"
#include "util/contracts.h"

namespace {

using namespace quorum;

TEST(ExecRegistry, BuiltinsAreRegistered) {
    const std::vector<std::string> names = exec::backend_names();
    EXPECT_NE(std::find(names.begin(), names.end(), "statevector"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "density"), names.end());
    EXPECT_TRUE(exec::is_backend_registered("statevector"));
    EXPECT_TRUE(exec::is_backend_registered("density"));
    EXPECT_FALSE(exec::is_backend_registered("warp-drive"));
}

TEST(ExecRegistry, MakeExecutorInstantiatesByName) {
    const std::unique_ptr<exec::executor> engine =
        exec::make_executor("statevector", exec::engine_config{});
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), "statevector");
}

TEST(ExecRegistry, UnknownBackendThrowsWithKnownNames) {
    try {
        (void)exec::make_executor("warp-drive", exec::engine_config{});
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("warp-drive"), std::string::npos);
        EXPECT_NE(what.find("statevector"), std::string::npos);
    }
}

/// A trivial backend: reports a constant. Registering it must make it
/// constructible by name — the plug-in seam future backends use.
class constant_backend final : public exec::executor {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "constant";
    }
    [[nodiscard]] bool
    supports(exec::readout_kind) const noexcept override {
        return true;
    }
    [[nodiscard]] double run(const qsim::circuit&, int,
                             quorum::util::rng*) const override {
        return 0.25;
    }
    void run_batch(const exec::program&,
                   std::span<const exec::sample> samples,
                   std::span<double> out) const override {
        for (std::size_t i = 0; i < samples.size(); ++i) {
            out[i] = 0.25;
        }
    }
};

TEST(ExecRegistry, CustomBackendsPlugIn) {
    const bool was_new = exec::register_backend(
        "constant", [](const exec::engine_config&) {
            return std::unique_ptr<exec::executor>(new constant_backend());
        });
    EXPECT_TRUE(was_new || exec::is_backend_registered("constant"));
    const std::unique_ptr<exec::executor> engine =
        exec::make_executor("constant", exec::engine_config{});
    EXPECT_EQ(engine->name(), "constant");
    EXPECT_DOUBLE_EQ(engine->run(qsim::circuit(1), 0, nullptr), 0.25);
}

} // namespace
