// Schedule-policy property suite: the span planner's contract is that the
// POLICY is a pure performance knob — "dynamic:<grain>" must produce
// IEEE-identical scores to "static" in every execution mode, on every
// consumer (in-process sharded backend, multi-process remote backend,
// serving fleet), for any grain. Plus the plan-shape invariants that make
// that true (sample-index-keyed spans, lane-count independence, span
// cap), the strict spec grammar, and the fault model under dynamic
// dispatch (requeue-once survives worker death with bit-identical
// output).
#include <algorithm>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/quorum.h"
#include "data/dataset.h"
#include "exec/fleet.h"
#include "exec/registry.h"
#include "exec/remote_backend.h"
#include "exec/schedule.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qml/swap_test.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;

struct batch_fixture {
    qml::ansatz_params params;
    std::vector<std::vector<double>> amplitudes;

    explicit batch_fixture(std::uint64_t seed, std::size_t samples = 12) {
        util::rng gen(seed);
        params = qml::random_ansatz_params(3, 2, gen);
        amplitudes.resize(samples);
        for (auto& amps : amplitudes) {
            std::vector<double> features(7);
            for (double& f : features) {
                f = gen.uniform() / 7.0;
            }
            amps = qml::to_amplitudes(features, 3);
        }
    }

    [[nodiscard]] std::vector<exec::sample>
    make_samples(std::vector<util::rng>* gens = nullptr) const {
        std::vector<exec::sample> samples(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            samples[i].amplitudes = amplitudes[i];
            if (gens != nullptr) {
                samples[i].gen = &(*gens)[i];
            }
        }
        return samples;
    }

    [[nodiscard]] std::vector<util::rng> make_gens(std::uint64_t seed) const {
        std::vector<util::rng> gens;
        gens.reserve(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            gens.emplace_back(util::derive_seed(seed, i));
        }
        return gens;
    }
};

exec::program analytic_program(const qml::ansatz_params& params,
                               std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_reg_a_template(params, level));
    program.readout.kind = exec::readout_kind::prep_overlap_p1;
    return program;
}

exec::program full_program(const qml::ansatz_params& params,
                           std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_template(params, level));
    program.readout.kind = exec::readout_kind::cbit_probability;
    program.readout.cbit = qml::swap_result_cbit;
    return program;
}

/// In-process transport: runs the worker side (exec::worker_session)
/// inline, so the full protocol executes without processes.
class loopback_transport : public exec::wire_transport {
public:
    void send_message(std::span<const std::uint8_t> payload) override {
        replies_.push_back(session_.handle(payload));
    }

    [[nodiscard]] std::vector<std::uint8_t> recv_message() override {
        if (replies_.empty()) {
            throw exec::transport_error("no reply queued");
        }
        std::vector<std::uint8_t> reply = std::move(replies_.front());
        replies_.pop_front();
        return reply;
    }

private:
    exec::worker_session session_;
    std::deque<std::vector<std::uint8_t>> replies_;
};

exec::transport_factory loopback_factory() {
    return [](std::size_t) -> std::unique_ptr<exec::wire_transport> {
        return std::make_unique<loopback_transport>();
    };
}

/// One execution-mode configuration of the invariance sweep. The program
/// flavour follows the mode's semantics: analytic shortcut where the
/// engine supports it, the full 2n+1-qubit circuit elsewhere.
struct mode_case {
    const char* name;
    std::string inner;
    exec::engine_config config;
    bool stochastic;
    bool full_circuit;
    std::size_t samples;
};

std::vector<mode_case> all_modes() {
    std::vector<mode_case> modes;
    modes.push_back({"exact", "statevector", exec::engine_config{},
                     /*stochastic=*/false, /*full_circuit=*/false, 12});
    {
        exec::engine_config config;
        config.sampling_mode = exec::sampling::binomial;
        config.shots = 512;
        modes.push_back({"sampled", "statevector", config,
                         /*stochastic=*/true, /*full_circuit=*/false, 12});
    }
    {
        exec::engine_config config;
        config.sampling_mode = exec::sampling::per_shot;
        config.shots = 64;
        modes.push_back({"per_shot", "statevector", config,
                         /*stochastic=*/true, /*full_circuit=*/true, 6});
    }
    {
        exec::engine_config config;
        config.noise = qsim::noise_model::ibm_brisbane_median();
        config.sampling_mode = exec::sampling::binomial;
        config.shots = 256;
        modes.push_back({"noisy", "density", config, /*stochastic=*/true,
                         /*full_circuit=*/true, 5});
    }
    return modes;
}

constexpr const char* dynamic_grains[] = {"dynamic:1", "dynamic:3",
                                          "dynamic:16"};

/// Runs one mode's batch under "static" and every dynamic grain through
/// `run_once` (which builds the consumer under test from the config) and
/// asserts the scores are bit-identical across all policies.
void expect_schedule_invariant(
    const mode_case& mode,
    const std::function<void(const exec::engine_config&, const mode_case&,
                             std::span<double>)>& run_once) {
    mode_case current = mode;
    std::vector<double> reference(mode.samples);
    current.config.schedule = exec::parse_schedule_spec("static");
    run_once(current.config, current, reference);
    for (const char* spec : dynamic_grains) {
        current.config.schedule = exec::parse_schedule_spec(spec);
        std::vector<double> out(mode.samples);
        run_once(current.config, current, out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            // EXPECT_EQ on doubles = bit-identical.
            EXPECT_EQ(out[i], reference[i])
                << mode.name << " " << spec << " sample=" << i;
        }
    }
}

// --- spec grammar -----------------------------------------------------------

TEST(Schedule, SpecParsingAcceptsTheGrammar) {
    const exec::schedule_spec s = exec::parse_schedule_spec("static");
    EXPECT_EQ(s.policy, exec::schedule_policy::static_spans);
    EXPECT_EQ(s.str(), "static");

    const exec::schedule_spec bare = exec::parse_schedule_spec("dynamic");
    EXPECT_EQ(bare.policy, exec::schedule_policy::dynamic_spans);
    EXPECT_EQ(bare.grain, exec::default_dynamic_grain);
    EXPECT_EQ(bare.str(), "dynamic:8");

    const exec::schedule_spec sized =
        exec::parse_schedule_spec("dynamic:16");
    EXPECT_EQ(sized.policy, exec::schedule_policy::dynamic_spans);
    EXPECT_EQ(sized.grain, 16u);
    EXPECT_EQ(sized.str(), "dynamic:16");
    EXPECT_EQ(sized, exec::parse_schedule_spec(sized.str()));
}

TEST(Schedule, SpecParsingRejectsGarbageNamingTheSpec) {
    for (const char* bad :
         {"", "dynamic:0", "dynamic:banana", "dynamic:-3", "dynamic:",
          "dynamic:1x", "static:4", "Dynamic", " dynamic", "dynamic:3 ",
          "round_robin"}) {
        try {
            (void)exec::parse_schedule_spec(bad);
            FAIL() << "expected contract_error for '" << bad << "'";
        } catch (const util::contract_error& error) {
            // The error names the offending spec so a mistyped
            // --schedule flag is diagnosable from the message alone.
            EXPECT_NE(std::strstr(error.what(), bad), nullptr)
                << "spec '" << bad << "' not in: " << error.what();
        }
    }
}

TEST(Schedule, ConfigValidationRejectsBadScheduleSpecs) {
    core::quorum_config config;
    config.schedule = "dynamic:0";
    try {
        config.validate();
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& error) {
        EXPECT_NE(std::strstr(error.what(), "dynamic:0"), nullptr)
            << error.what();
    }
}

// --- plan shape -------------------------------------------------------------

TEST(Schedule, StaticPlansAreMakeShardPlanVerbatim) {
    const exec::span_planner planner(exec::parse_schedule_spec("static"));
    for (const std::size_t n : {1u, 7u, 60u, 241u}) {
        for (const std::size_t lanes : {1u, 2u, 3u, 7u, 64u}) {
            const auto plan = planner.plan(n, lanes, nullptr, 5);
            const auto direct = exec::make_shard_plan(n, lanes, nullptr, 5);
            ASSERT_EQ(plan.size(), direct.size());
            for (std::size_t k = 0; k < plan.size(); ++k) {
                EXPECT_EQ(plan[k].shard, direct[k].shard);
                EXPECT_EQ(plan[k].first, direct[k].first);
                EXPECT_EQ(plan[k].count, direct[k].count);
                EXPECT_EQ(plan[k].rng_seed, direct[k].rng_seed);
            }
        }
    }
}

TEST(Schedule, DynamicPlansAreContiguousGrainSizedAndSeeded) {
    const exec::span_planner planner(
        exec::parse_schedule_spec("dynamic:3"));
    for (const std::size_t n : {1u, 3u, 7u, 60u, 241u}) {
        const auto plan = planner.plan(n, 4, nullptr, 2025);
        ASSERT_EQ(plan.size(), (n + 2) / 3);
        std::size_t covered = 0;
        for (std::size_t k = 0; k < plan.size(); ++k) {
            EXPECT_EQ(plan[k].shard, k); // output keyed by span index
            EXPECT_EQ(plan[k].first, covered);
            EXPECT_GT(plan[k].count, 0u);
            EXPECT_LE(plan[k].count, 3u);
            EXPECT_EQ(plan[k].rng_seed, util::derive_seed(2025, k));
            covered += plan[k].count;
        }
        EXPECT_EQ(covered, n);
    }
}

TEST(Schedule, DynamicPlansIgnoreTheLaneCount) {
    // The plan is a pure function of (n_samples, grain): growing or
    // shrinking the lane set between batches must not move a single
    // span boundary — that is what keeps scores fleet-size-invariant
    // under dynamic dispatch.
    const exec::span_planner planner(
        exec::parse_schedule_spec("dynamic:5"));
    const auto one = planner.plan(83, 1, nullptr, 7);
    for (const std::size_t lanes : {2u, 3u, 64u}) {
        const auto plan = planner.plan(83, lanes, nullptr, 7);
        ASSERT_EQ(plan.size(), one.size());
        for (std::size_t k = 0; k < plan.size(); ++k) {
            EXPECT_EQ(plan[k].first, one[k].first);
            EXPECT_EQ(plan[k].count, one[k].count);
            EXPECT_EQ(plan[k].rng_seed, one[k].rng_seed);
        }
    }
}

TEST(Schedule, DynamicSpanCountIsCappedDeterministically) {
    // 10000 samples at grain 1 would be 10000 spans; the cap coarsens
    // the effective grain to ceil(10000/4096) = 3, from n_samples alone.
    const exec::span_planner planner(
        exec::parse_schedule_spec("dynamic:1"));
    const auto plan = planner.plan(10000, 8);
    EXPECT_LE(plan.size(), exec::max_spans_per_batch);
    ASSERT_EQ(plan.size(), 3334u); // ceil(10000 / 3)
    std::size_t covered = 0;
    for (const exec::shard_work& span : plan) {
        EXPECT_EQ(span.first, covered);
        covered += span.count;
    }
    EXPECT_EQ(covered, 10000u);
}

TEST(Schedule, SpanQueueHandsOutEachIndexExactlyOnce) {
    exec::span_queue queue(97);
    std::vector<std::vector<std::size_t>> claimed(4);
    {
        std::vector<std::thread> pullers;
        for (std::size_t t = 0; t < claimed.size(); ++t) {
            pullers.emplace_back([&queue, &mine = claimed[t]] {
                while (const auto k = queue.pull()) {
                    mine.push_back(*k);
                }
            });
        }
        for (std::thread& puller : pullers) {
            puller.join();
        }
    }
    std::set<std::size_t> all;
    for (const auto& mine : claimed) {
        all.insert(mine.begin(), mine.end());
    }
    EXPECT_EQ(all.size(), 97u); // every span claimed, none twice
    EXPECT_EQ(*all.begin(), 0u);
    EXPECT_EQ(*all.rbegin(), 96u);
    EXPECT_FALSE(queue.pull().has_value()); // drained stays drained

    exec::span_queue closed(5);
    ASSERT_TRUE(closed.pull().has_value());
    closed.close();
    EXPECT_FALSE(closed.pull().has_value());
}

// --- policy invariance on every consumer ------------------------------------

TEST(Schedule, ShardedScoresMatchStaticInEveryMode) {
    for (const mode_case& mode : all_modes()) {
        const batch_fixture fixture(61, mode.samples);
        const exec::program program =
            mode.full_circuit ? full_program(fixture.params, 1)
                              : analytic_program(fixture.params, 1);
        expect_schedule_invariant(
            mode, [&](const exec::engine_config& config,
                      const mode_case& m, std::span<double> out) {
                exec::engine_config cfg = config;
                cfg.shards = 3;
                const auto engine =
                    exec::make_executor("sharded:" + m.inner, cfg);
                std::vector<util::rng> gens = fixture.make_gens(99);
                engine->run_batch(
                    program,
                    fixture.make_samples(m.stochastic ? &gens : nullptr),
                    out);
            });
    }
}

TEST(Schedule, RemoteScoresMatchStaticInEveryMode) {
    for (const mode_case& mode : all_modes()) {
        const batch_fixture fixture(63, mode.samples);
        const exec::program program =
            mode.full_circuit ? full_program(fixture.params, 1)
                              : analytic_program(fixture.params, 1);
        expect_schedule_invariant(
            mode, [&](const exec::engine_config& config,
                      const mode_case& m, std::span<double> out) {
                exec::engine_config cfg = config;
                cfg.shards = 2;
                const exec::remote_backend engine(cfg, m.inner,
                                                  loopback_factory());
                std::vector<util::rng> gens = fixture.make_gens(99);
                engine.run_batch(
                    program,
                    fixture.make_samples(m.stochastic ? &gens : nullptr),
                    out);
            });
    }
}

TEST(Schedule, FleetScoresMatchStaticInEveryMode) {
    for (const mode_case& mode : all_modes()) {
        const batch_fixture fixture(65, mode.samples);
        const exec::program program =
            mode.full_circuit ? full_program(fixture.params, 1)
                              : analytic_program(fixture.params, 1);
        expect_schedule_invariant(
            mode, [&](const exec::engine_config& config,
                      const mode_case& m, std::span<double> out) {
                exec::fleet_config fleet_cfg;
                fleet_cfg.inner = m.inner;
                fleet_cfg.engine = config;
                auto fleet =
                    std::make_shared<exec::worker_fleet>(fleet_cfg);
                for (std::size_t i = 0; i < 2; ++i) {
                    fleet->add_factory_lane(loopback_factory(),
                                            "loop #" + std::to_string(i));
                }
                fleet->wait_for_lanes(2, 5000);
                const exec::fleet_executor engine(fleet);
                std::vector<util::rng> gens = fixture.make_gens(99);
                engine.run_batch(
                    program,
                    fixture.make_samples(m.stochastic ? &gens : nullptr),
                    out);
            });
    }
}

TEST(Schedule, ShardedLevelFamiliesMatchStaticBitForBit) {
    // The fused run_batch_levels path plans through the same planner —
    // one dynamic grain sweep over a 2-level family pins it too.
    const batch_fixture fixture(67, 10);
    const std::vector<exec::program> levels = {
        analytic_program(fixture.params, 1),
        analytic_program(fixture.params, 2)};
    exec::engine_config config;
    config.shards = 3;
    std::vector<double> reference(fixture.amplitudes.size() * 2);
    exec::make_executor("sharded:statevector", config)
        ->run_batch_levels(levels, fixture.make_samples(), reference);
    for (const char* spec : dynamic_grains) {
        config.schedule = exec::parse_schedule_spec(spec);
        const auto engine =
            exec::make_executor("sharded:statevector", config);
        std::vector<double> out(reference.size());
        engine->run_batch_levels(levels, fixture.make_samples(), out);
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i], reference[i]) << spec << " value=" << i;
        }
    }
}

// --- fault model under dynamic dispatch -------------------------------------

/// Transport whose Nth non-handshake recv throws once (a worker dying
/// mid-span under dynamic dispatch).
struct kill_plan {
    int recv_calls = 0;
    int die_on_recv_call = 0;
    int constructed = 0;
};

class killable_transport : public exec::wire_transport {
public:
    explicit killable_transport(kill_plan* plan) : plan_(plan) {}

    void send_message(std::span<const std::uint8_t> payload) override {
        replies_.push_back(session_.handle(payload));
    }

    [[nodiscard]] std::vector<std::uint8_t> recv_message() override {
        ++plan_->recv_calls;
        if (plan_->recv_calls == plan_->die_on_recv_call) {
            throw exec::transport_error("injected: worker died mid-span");
        }
        if (replies_.empty()) {
            throw exec::transport_error("no reply queued");
        }
        std::vector<std::uint8_t> reply = std::move(replies_.front());
        replies_.pop_front();
        return reply;
    }

private:
    kill_plan* plan_;
    exec::worker_session session_;
    std::deque<std::vector<std::uint8_t>> replies_;
};

TEST(Schedule, RemoteDynamicSurvivesWorkerDeathWithIdenticalScores) {
    const batch_fixture fixture(71);
    std::vector<double> reference(fixture.amplitudes.size());
    exec::make_executor("statevector", exec::engine_config{})
        ->run_batch(analytic_program(fixture.params, 1),
                    fixture.make_samples(), reference);

    kill_plan plan;
    // One worker keeps the recv order deterministic: recv 1 is the
    // hello_ack, then one recv per span. dynamic:4 over 12 samples is
    // 3 spans; kill the second span's reply — the lane restarts (fresh
    // handshake) and re-runs THAT span, requeue-once, scores unharmed.
    plan.die_on_recv_call = 3;
    exec::engine_config config;
    config.shards = 1;
    config.schedule = exec::parse_schedule_spec("dynamic:4");
    const exec::remote_backend engine(
        config, "statevector",
        [&plan](std::size_t) -> std::unique_ptr<exec::wire_transport> {
            ++plan.constructed;
            return std::make_unique<killable_transport>(&plan);
        });
    std::vector<double> out(fixture.amplitudes.size());
    engine.run_batch(analytic_program(fixture.params, 1),
                     fixture.make_samples(), out);
    EXPECT_EQ(plan.constructed, 2); // 1 worker + 1 restart
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], reference[i]) << i;
    }
}

TEST(Schedule, FleetStatsAccountForEveryDynamicSpan) {
    const batch_fixture fixture(73);
    exec::fleet_config fleet_cfg;
    fleet_cfg.engine.schedule = exec::parse_schedule_spec("dynamic:1");
    auto fleet = std::make_shared<exec::worker_fleet>(fleet_cfg);
    for (std::size_t i = 0; i < 2; ++i) {
        fleet->add_factory_lane(loopback_factory(),
                                "loop #" + std::to_string(i));
    }
    fleet->wait_for_lanes(2, 5000);
    const exec::fleet_executor engine(fleet);
    std::vector<double> out(fixture.amplitudes.size());
    engine.run_batch(analytic_program(fixture.params, 1),
                     fixture.make_samples(), out);

    const exec::fleet_stats stats = fleet->stats();
    EXPECT_EQ(stats.live_lanes, 2u);
    EXPECT_EQ(stats.requeued_spans, 0u);
    // dynamic:1 over 12 samples = 12 spans, every one attributed to a
    // lane; which lane got how many is timing, the sum is not.
    EXPECT_EQ(stats.spans_completed, 12u);
    ASSERT_EQ(stats.lanes.size(), 2u);
    std::size_t summed = 0;
    for (const exec::fleet_lane_stats& lane : stats.lanes) {
        EXPECT_TRUE(lane.live);
        EXPECT_FALSE(lane.label.empty());
        summed += lane.spans_completed;
    }
    EXPECT_EQ(summed, stats.spans_completed);
}

// --- detector-level invariance ----------------------------------------------

TEST(Schedule, DetectorScoresAreScheduleInvariant) {
    // End-to-end: the full Quorum pipeline (ensemble, fused levels,
    // bucketing) through the sharded backend scores IEEE == under both
    // policies — --schedule is a pure wall-clock knob.
    std::vector<std::vector<double>> rows(18);
    util::rng gen(2025);
    for (auto& row : rows) {
        row.resize(9);
        for (double& f : row) {
            f = gen.uniform();
        }
    }
    const data::dataset data = data::dataset::from_rows(rows);

    core::quorum_config config;
    config.ensemble_groups = 8;
    config.backend = "sharded";
    config.shards = 3;
    const std::vector<double> reference =
        core::quorum_detector(config).score(data).scores;
    for (const char* spec : {"dynamic:3", "dynamic:16"}) {
        config.schedule = spec;
        const std::vector<double> scores =
            core::quorum_detector(config).score(data).scores;
        ASSERT_EQ(scores.size(), reference.size());
        for (std::size_t i = 0; i < scores.size(); ++i) {
            EXPECT_EQ(scores[i], reference[i]) << spec << " row=" << i;
        }
    }
}

} // namespace
