#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "exec/registry.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qsim/statevector_runner.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;

struct batch_fixture {
    qml::ansatz_params params;
    std::vector<std::vector<double>> amplitudes;

    explicit batch_fixture(std::uint64_t seed, std::size_t samples = 12) {
        util::rng gen(seed);
        params = qml::random_ansatz_params(3, 2, gen);
        amplitudes.resize(samples);
        for (auto& amps : amplitudes) {
            std::vector<double> features(7);
            for (double& f : features) {
                f = gen.uniform() / 7.0;
            }
            amps = qml::to_amplitudes(features, 3);
        }
    }

    [[nodiscard]] std::vector<exec::sample>
    make_samples(std::vector<util::rng>* gens = nullptr) const {
        std::vector<exec::sample> samples(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            samples[i].amplitudes = amplitudes[i];
            if (gens != nullptr) {
                samples[i].gen = &(*gens)[i];
            }
        }
        return samples;
    }

    [[nodiscard]] std::vector<util::rng>
    make_gens(std::uint64_t seed) const {
        std::vector<util::rng> gens;
        gens.reserve(amplitudes.size());
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            gens.emplace_back(util::derive_seed(seed, i));
        }
        return gens;
    }
};

exec::program analytic_program(const qml::ansatz_params& params,
                               std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_reg_a_template(params, level));
    program.readout.kind = exec::readout_kind::prep_overlap_p1;
    return program;
}

exec::program full_program(const qml::ansatz_params& params,
                           std::size_t level) {
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_template(params, level));
    program.readout.kind = exec::readout_kind::cbit_probability;
    program.readout.cbit = qml::swap_result_cbit;
    return program;
}

TEST(StatevectorBackend, ExactBatchMatchesAnalyticShortcut) {
    const batch_fixture fixture(3);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    const exec::program program = analytic_program(fixture.params, 1);
    const std::vector<exec::sample> samples = fixture.make_samples();
    std::vector<double> out(samples.size());
    engine->run_batch(program, samples, out);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        // The engine evaluates <psi|D phi_b> as <D†psi|phi_b> (the
        // SWAP-test short-circuit — D applied once to the reference, not
        // to every reset branch), so it agrees with the circuit-order
        // reference to reassociation rounding, not bitwise. Bitwise
        // contracts live in the golden fixtures and the fused-vs-per-level
        // suite (test_fused_levels.cpp).
        EXPECT_NEAR(out[i],
                    qml::analytic_swap_p1(fixture.amplitudes[i],
                                          fixture.params, 1),
                    1e-12)
            << i;
    }
}

TEST(StatevectorBackend, ExactFullCircuitIsBitIdenticalToLegacyRunner) {
    const batch_fixture fixture(5);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    const exec::program program = full_program(fixture.params, 2);
    const std::vector<exec::sample> samples = fixture.make_samples();
    std::vector<double> out(samples.size());
    engine->run_batch(program, samples, out);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const qsim::circuit c = qml::build_autoencoder_circuit(
            fixture.amplitudes[i], fixture.params, 2);
        const qsim::exact_run_result result =
            qsim::statevector_runner::run_exact(c);
        EXPECT_EQ(out[i],
                  result.cbit_probability_one(qml::swap_result_cbit))
            << i;
    }
}

TEST(StatevectorBackend, FullCircuitAgreesWithAnalyticShortcut) {
    const batch_fixture fixture(7);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    std::vector<double> analytic(fixture.amplitudes.size());
    std::vector<double> full(fixture.amplitudes.size());
    const std::vector<exec::sample> samples = fixture.make_samples();
    engine->run_batch(analytic_program(fixture.params, 1), samples, analytic);
    engine->run_batch(full_program(fixture.params, 1), samples, full);
    for (std::size_t i = 0; i < analytic.size(); ++i) {
        EXPECT_NEAR(analytic[i], full[i], 1e-12) << i;
    }
}

TEST(StatevectorBackend, BinomialSamplingIsDeterministicPerStream) {
    const batch_fixture fixture(9);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 512;
    const auto engine = exec::make_executor("statevector", config);
    const exec::program program = analytic_program(fixture.params, 1);

    std::vector<util::rng> gens_a = fixture.make_gens(77);
    std::vector<util::rng> gens_b = fixture.make_gens(77);
    std::vector<double> out_a(fixture.amplitudes.size());
    std::vector<double> out_b(fixture.amplitudes.size());
    engine->run_batch(program, fixture.make_samples(&gens_a), out_a);
    engine->run_batch(program, fixture.make_samples(&gens_b), out_b);
    EXPECT_EQ(out_a, out_b);
}

TEST(StatevectorBackend, PerShotConvergesToExactProbability) {
    const batch_fixture fixture(11, 4);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::per_shot;
    config.shots = 4096;
    const auto engine = exec::make_executor("statevector", config);
    const exec::program shot_program = full_program(fixture.params, 1);

    const auto exact_engine =
        exec::make_executor("statevector", exec::engine_config{});
    std::vector<double> exact(fixture.amplitudes.size());
    exact_engine->run_batch(analytic_program(fixture.params, 1),
                            fixture.make_samples(), exact);

    std::vector<util::rng> gens = fixture.make_gens(123);
    std::vector<double> sampled(fixture.amplitudes.size());
    engine->run_batch(shot_program, fixture.make_samples(&gens), sampled);
    for (std::size_t i = 0; i < exact.size(); ++i) {
        EXPECT_NEAR(sampled[i], exact[i], 0.05) << i;
    }
}

TEST(StatevectorBackend, RunMatchesRunBatchOnACompleteCircuit) {
    const batch_fixture fixture(13, 1);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    const qsim::circuit c = qml::build_autoencoder_circuit(
        fixture.amplitudes[0], fixture.params, 1);
    const double via_run = engine->run(c, qml::swap_result_cbit, nullptr);
    std::vector<double> via_batch(1);
    engine->run_batch(full_program(fixture.params, 1),
                      fixture.make_samples(), via_batch);
    EXPECT_EQ(via_run, via_batch[0]);
}

TEST(StatevectorBackend, RejectsMismatchedBatchSpans) {
    const batch_fixture fixture(15, 2);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    const exec::program program = analytic_program(fixture.params, 1);
    const std::vector<exec::sample> samples = fixture.make_samples();
    std::vector<double> too_small(1);
    EXPECT_THROW(engine->run_batch(program, samples, too_small),
                 util::contract_error);
}

TEST(StatevectorBackend, SamplingWithoutStreamsThrows) {
    const batch_fixture fixture(17, 2);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 16;
    const auto engine = exec::make_executor("statevector", config);
    const exec::program program = analytic_program(fixture.params, 1);
    std::vector<double> out(fixture.amplitudes.size());
    EXPECT_THROW(engine->run_batch(program, fixture.make_samples(), out),
                 util::contract_error);
}

TEST(DensityBackend, NoiselessDensityAgreesWithStatevector) {
    const batch_fixture fixture(19, 3);
    exec::engine_config config;
    config.noise = qsim::noise_model::ideal();
    const auto density = exec::make_executor("density", config);
    const auto statevector =
        exec::make_executor("statevector", exec::engine_config{});
    const exec::program program = full_program(fixture.params, 1);
    std::vector<double> noisy(fixture.amplitudes.size());
    std::vector<double> pure(fixture.amplitudes.size());
    density->run_batch(program, fixture.make_samples(), noisy);
    statevector->run_batch(program, fixture.make_samples(), pure);
    for (std::size_t i = 0; i < noisy.size(); ++i) {
        EXPECT_NEAR(noisy[i], pure[i], 1e-8) << i;
    }
}

TEST(DensityBackend, BrisbaneNoiseShiftsProbabilitiesSlightly) {
    const batch_fixture fixture(21, 3);
    exec::engine_config config;
    config.noise = qsim::noise_model::ibm_brisbane_median();
    const auto density = exec::make_executor("density", config);
    const auto statevector =
        exec::make_executor("statevector", exec::engine_config{});
    const exec::program program = full_program(fixture.params, 1);
    std::vector<double> noisy(fixture.amplitudes.size());
    std::vector<double> pure(fixture.amplitudes.size());
    density->run_batch(program, fixture.make_samples(), noisy);
    statevector->run_batch(program, fixture.make_samples(), pure);
    for (std::size_t i = 0; i < noisy.size(); ++i) {
        EXPECT_NE(noisy[i], pure[i]) << i;       // noise does something
        EXPECT_NEAR(noisy[i], pure[i], 0.1) << i; // but not much
    }
}

TEST(DensityBackend, RejectsPerShotSampling) {
    exec::engine_config config;
    config.sampling_mode = exec::sampling::per_shot;
    config.shots = 8;
    EXPECT_THROW((void)exec::make_executor("density", config),
                 util::contract_error);
}

} // namespace
