// Fused-vs-per-level bit-identity property suite — the contract of the
// multi-level execution path: run_batch_levels over a compression-level
// family returns values EQUAL (IEEE ==, i.e. identical at 17 significant
// digits) to running each level alone through run_batch with that level's
// rng stream, on every registered backend and sampling mode. The fused
// implementations only amortise shared work (state prep + encoder + nested
// reset prefix, the adjoint decoder of the SWAP-test short-circuit, the
// density engine's cached prefix evolution); they may never change a
// number.
#include <vector>

#include <gtest/gtest.h>

#include "exec/registry.h"
#include "exec/sharded_backend.h"
#include "qml/amplitude_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qsim/compiled_program.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;

struct level_fixture {
    qml::ansatz_params params;
    std::vector<std::vector<double>> amplitudes;

    explicit level_fixture(std::uint64_t seed, std::size_t samples = 10,
                           std::size_t n_qubits = 3) {
        util::rng gen(seed);
        params = qml::random_ansatz_params(n_qubits, 2, gen);
        amplitudes.resize(samples);
        for (auto& amps : amplitudes) {
            std::vector<double> features((std::size_t{1} << n_qubits) - 1);
            for (double& f : features) {
                f = gen.uniform() / static_cast<double>(features.size());
            }
            amps = qml::to_amplitudes(features, n_qubits);
        }
    }

    /// Register-A shortcut family (prep-overlap readout).
    [[nodiscard]] std::vector<exec::program>
    analytic_family(std::span<const std::size_t> levels) const {
        std::vector<exec::program> family;
        for (const std::size_t level : levels) {
            exec::program program;
            program.circuit = qsim::compiled_program::compile(
                qml::autoencoder_reg_a_template(params, level));
            program.readout.kind = exec::readout_kind::prep_overlap_p1;
            family.push_back(std::move(program));
        }
        return family;
    }

    /// Full 2n+1-qubit SWAP-test family (classical-bit readout).
    [[nodiscard]] std::vector<exec::program>
    full_family(std::span<const std::size_t> levels) const {
        std::vector<exec::program> family;
        for (const std::size_t level : levels) {
            exec::program program;
            program.circuit = qsim::compiled_program::compile(
                qml::autoencoder_template(params, level));
            program.readout.kind = exec::readout_kind::cbit_probability;
            program.readout.cbit = qml::swap_result_cbit;
            family.push_back(std::move(program));
        }
        return family;
    }
};

/// Per-(level, sample) rng streams, derived exactly like core's ensemble
/// loop: independent of evaluation order.
struct stream_table {
    std::vector<util::rng> gens;
    std::vector<util::rng*> pointers;
    std::size_t levels = 0;

    stream_table(std::uint64_t seed, std::size_t samples,
                 std::size_t level_count)
        : levels(level_count) {
        gens.reserve(samples * level_count);
        pointers.reserve(samples * level_count);
        for (std::size_t i = 0; i < samples; ++i) {
            for (std::size_t k = 0; k < level_count; ++k) {
                gens.emplace_back(util::derive_seed(seed, k * samples + i));
                pointers.push_back(&gens.back());
            }
        }
    }

    [[nodiscard]] std::span<util::rng* const>
    for_sample(std::size_t i) const {
        return {pointers.data() + i * levels, levels};
    }
    [[nodiscard]] util::rng* at(std::size_t i, std::size_t k) const {
        return pointers[i * levels + k];
    }
};

std::vector<exec::sample> make_samples(const level_fixture& fixture,
                                       const stream_table* streams) {
    std::vector<exec::sample> samples(fixture.amplitudes.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        samples[i].amplitudes = fixture.amplitudes[i];
        if (streams != nullptr) {
            samples[i].level_gens = streams->for_sample(i);
        }
    }
    return samples;
}

/// The reference: each level evaluated alone through run_batch, with a
/// FRESH copy of the per-(level, sample) streams so the fused run draws
/// from identical rng states.
std::vector<double> per_level_reference(const exec::executor& engine,
                                        std::span<const exec::program> family,
                                        const level_fixture& fixture,
                                        std::uint64_t stream_seed,
                                        bool stochastic) {
    const std::size_t n = fixture.amplitudes.size();
    std::vector<double> reference(n * family.size());
    std::vector<exec::sample> samples = make_samples(fixture, nullptr);
    stream_table streams(stream_seed, n, family.size());
    std::vector<double> out(n);
    for (std::size_t k = 0; k < family.size(); ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            samples[i].gen = stochastic ? streams.at(i, k) : nullptr;
        }
        engine.run_batch(family[k], samples, out);
        for (std::size_t i = 0; i < n; ++i) {
            reference[i * family.size() + k] = out[i];
        }
    }
    return reference;
}

void expect_fused_matches(const exec::executor& engine,
                          std::span<const exec::program> family,
                          const level_fixture& fixture,
                          std::uint64_t stream_seed, bool stochastic) {
    const std::size_t n = fixture.amplitudes.size();
    const std::vector<double> reference = per_level_reference(
        engine, family, fixture, stream_seed, stochastic);

    stream_table streams(stream_seed, n, family.size());
    const std::vector<exec::sample> samples =
        make_samples(fixture, stochastic ? &streams : nullptr);
    std::vector<double> fused(n * family.size());
    engine.run_batch_levels(family, samples, fused);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < family.size(); ++k) {
            // IEEE ==, i.e. identical at 17 significant digits.
            EXPECT_EQ(fused[i * family.size() + k],
                      reference[i * family.size() + k])
                << "sample " << i << " level index " << k;
        }
    }
}

constexpr std::size_t nested_levels[] = {1, 2};
constexpr std::size_t reversed_levels[] = {2, 1};
constexpr std::size_t single_level[] = {1};

TEST(FusedLevels, StatevectorExactAnalyticFamily) {
    const level_fixture fixture(3);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    expect_fused_matches(*engine, fixture.analytic_family(nested_levels),
                         fixture, 17, false);
}

TEST(FusedLevels, StatevectorExactFourLevelFamily) {
    // The flagship fused shape: 5-qubit registers, levels {1, 2, 3, 4}.
    const level_fixture fixture(5, 6, 5);
    const std::size_t levels[] = {1, 2, 3, 4};
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    expect_fused_matches(*engine, fixture.analytic_family(levels), fixture,
                         19, false);
}

TEST(FusedLevels, StatevectorExactFullCircuitFamily) {
    const level_fixture fixture(7);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    expect_fused_matches(*engine, fixture.full_family(nested_levels),
                         fixture, 23, false);
}

TEST(FusedLevels, StatevectorBinomialAnalyticFamily) {
    const level_fixture fixture(9);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 512;
    const auto engine = exec::make_executor("statevector", config);
    expect_fused_matches(*engine, fixture.analytic_family(nested_levels),
                         fixture, 29, true);
}

TEST(FusedLevels, StatevectorPerShotFullCircuitFamily) {
    const level_fixture fixture(11, 4);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::per_shot;
    config.shots = 32;
    const auto engine = exec::make_executor("statevector", config);
    expect_fused_matches(*engine, fixture.full_family(nested_levels),
                         fixture, 31, true);
}

TEST(FusedLevels, DensityExactFullCircuitFamily) {
    const level_fixture fixture(13, 4);
    exec::engine_config config;
    config.noise = qsim::noise_model::ibm_brisbane_median();
    const auto engine = exec::make_executor("density", config);
    expect_fused_matches(*engine, fixture.full_family(nested_levels),
                         fixture, 37, false);
}

TEST(FusedLevels, DensityBinomialFullCircuitFamily) {
    const level_fixture fixture(15, 3);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 256;
    config.noise = qsim::noise_model::ibm_brisbane_median();
    const auto engine = exec::make_executor("density", config);
    expect_fused_matches(*engine, fixture.full_family(nested_levels),
                         fixture, 41, true);
}

TEST(FusedLevels, ShardedStatevectorEveryShardCount) {
    const level_fixture fixture(17);
    for (const std::size_t shards : {1u, 2u, 3u}) {
        exec::engine_config config;
        config.sampling_mode = exec::sampling::binomial;
        config.shots = 256;
        config.shards = shards;
        const auto engine =
            exec::make_executor("sharded:statevector", config);
        expect_fused_matches(*engine, fixture.analytic_family(nested_levels),
                             fixture, 43, true);
    }
}

TEST(FusedLevels, ShardedDensityExact) {
    const level_fixture fixture(19, 4);
    exec::engine_config config;
    config.noise = qsim::noise_model::ibm_brisbane_median();
    config.shards = 2;
    const auto engine = exec::make_executor("sharded:density", config);
    expect_fused_matches(*engine, fixture.full_family(nested_levels),
                         fixture, 47, false);
}

TEST(FusedLevels, NonNestedLevelOrderMatchesToo) {
    // Levels in descending order share no usable trunk beyond the encoder
    // — the rebuild path must still be ==-equal to per-level evaluation.
    const level_fixture fixture(21);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    expect_fused_matches(*engine, fixture.analytic_family(reversed_levels),
                         fixture, 53, false);
}

TEST(FusedLevels, SingleLevelFamilyWorks) {
    const level_fixture fixture(23);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    expect_fused_matches(*engine, fixture.analytic_family(single_level),
                         fixture, 59, false);
}

TEST(FusedLevels, CapabilityIsAdvertisedPerBackend) {
    exec::engine_config exact;
    EXPECT_TRUE(exec::make_executor("statevector", exact)
                    ->supports(exec::capability::fused_levels));
    EXPECT_TRUE(exec::make_executor("density", exact)
                    ->supports(exec::capability::fused_levels));
    EXPECT_TRUE(exec::make_executor("sharded:statevector", exact)
                    ->supports(exec::capability::fused_levels));

    exec::engine_config per_shot;
    per_shot.sampling_mode = exec::sampling::per_shot;
    per_shot.shots = 8;
    // Per-shot replay is stochastic per shot: nothing to fuse, and the
    // naive fallback serves run_batch_levels instead.
    EXPECT_FALSE(exec::make_executor("statevector", per_shot)
                     ->supports(exec::capability::fused_levels));
    EXPECT_FALSE(exec::make_executor("sharded:statevector", per_shot)
                     ->supports(exec::capability::fused_levels));
}

TEST(FusedLevels, MissingLevelStreamsAreRejected) {
    const level_fixture fixture(25, 3);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::binomial;
    config.shots = 16;
    const auto engine = exec::make_executor("statevector", config);
    const std::vector<exec::program> family =
        fixture.analytic_family(nested_levels);
    const std::vector<exec::sample> samples =
        make_samples(fixture, nullptr); // no level_gens
    std::vector<double> out(samples.size() * family.size());
    EXPECT_THROW(engine->run_batch_levels(family, samples, out),
                 util::contract_error);
}

TEST(FusedLevels, DivergentFamilyHeadsAreRejected) {
    // Mixing register sizes (different prep-slot layouts) in one family
    // must fail loudly: fused implementations prepare ONE state from one
    // level's head and reuse it for every level.
    const level_fixture small(29, 3, 3);
    const level_fixture large(29, 3, 4);
    std::vector<exec::program> family =
        small.analytic_family(single_level);
    std::vector<exec::program> other =
        large.analytic_family(single_level);
    family.push_back(std::move(other.front()));
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    const std::vector<exec::sample> samples = make_samples(small, nullptr);
    std::vector<double> out(samples.size() * family.size());
    EXPECT_THROW(engine->run_batch_levels(family, samples, out),
                 util::contract_error);
}

TEST(FusedLevels, SharedGenWithoutLevelStreamsIsRejectedByBasePath) {
    // The naive base implementation must not silently thread one rng
    // stream through all levels sequentially (that would make level k's
    // draws depend on level k-1's).
    const level_fixture fixture(31, 3);
    exec::engine_config config;
    config.sampling_mode = exec::sampling::per_shot; // base-path fallback
    config.shots = 8;
    const auto engine = exec::make_executor("statevector", config);
    const std::vector<exec::program> family =
        fixture.full_family(nested_levels);
    std::vector<util::rng> gens;
    gens.reserve(fixture.amplitudes.size());
    std::vector<exec::sample> samples = make_samples(fixture, nullptr);
    for (exec::sample& s : samples) {
        gens.emplace_back(util::derive_seed(9, gens.size()));
        s.gen = &gens.back();
    }
    std::vector<double> out(samples.size() * family.size());
    EXPECT_THROW(engine->run_batch_levels(family, samples, out),
                 util::contract_error);
}

TEST(FusedLevels, MismatchedOutputSpanIsRejected) {
    const level_fixture fixture(27, 3);
    const auto engine =
        exec::make_executor("statevector", exec::engine_config{});
    const std::vector<exec::program> family =
        fixture.analytic_family(nested_levels);
    const std::vector<exec::sample> samples = make_samples(fixture, nullptr);
    std::vector<double> too_small(samples.size()); // needs samples * levels
    EXPECT_THROW(engine->run_batch_levels(family, samples, too_small),
                 util::contract_error);
}

} // namespace
