// quorum_worker flag-parsing regression tests, against the REAL binary.
// The bug of record: --retry/--retry-delay-ms went through std::atoi,
// so "--retry banana" silently became 0 retries and "--retry -1"
// slipped past as a negative. Both must now be usage errors (exit 2)
// with a diagnostic naming the flag.
#ifdef QUORUM_WORKER_BIN

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

/// Runs the worker binary with the given arguments, stdout/stderr to
/// /dev/null, and returns its exit code (-1 on spawn trouble).
int run_worker(const std::vector<std::string>& args) {
    const pid_t pid = ::fork();
    if (pid == 0) {
        const int null_fd = ::open("/dev/null", O_RDWR);
        if (null_fd >= 0) {
            ::dup2(null_fd, STDIN_FILENO);
            ::dup2(null_fd, STDOUT_FILENO);
            ::dup2(null_fd, STDERR_FILENO);
            ::close(null_fd);
        }
        std::vector<char*> argv;
        argv.push_back(const_cast<char*>(QUORUM_WORKER_BIN));
        for (const std::string& arg : args) {
            argv.push_back(const_cast<char*>(arg.c_str()));
        }
        argv.push_back(nullptr);
        ::execv(QUORUM_WORKER_BIN, argv.data());
        ::_exit(127);
    }
    int status = 0;
    if (pid < 0 || ::waitpid(pid, &status, 0) != pid ||
        !WIFEXITED(status)) {
        return -1;
    }
    return WEXITSTATUS(status);
}

TEST(WorkerCli, VersionAndHelpExitCleanly) {
    EXPECT_EQ(run_worker({"--version"}), 0);
    EXPECT_EQ(run_worker({"--help"}), 0);
}

TEST(WorkerCli, RejectsGarbageRetryValues) {
    EXPECT_EQ(run_worker({"--retry", "banana"}), 2)
        << "std::atoi would have accepted this as 0 retries";
    EXPECT_EQ(run_worker({"--retry", "3banana"}), 2);
    EXPECT_EQ(run_worker({"--retry-delay-ms", "banana"}), 2);
}

TEST(WorkerCli, RejectsNegativeRetryValues) {
    EXPECT_EQ(run_worker({"--retry", "-1"}), 2);
    EXPECT_EQ(run_worker({"--retry-delay-ms", "-200"}), 2);
}

TEST(WorkerCli, RejectsOverflowingRetryValues) {
    // INT_MAX + 1 and a 20-digit monster: both must be usage errors,
    // not wrapped or saturated values.
    EXPECT_EQ(run_worker({"--retry", "2147483648"}), 2);
    EXPECT_EQ(run_worker({"--retry-delay-ms", "99999999999999999999"}), 2);
}

TEST(WorkerCli, RejectsUnknownOptionsAndConflictingModes) {
    EXPECT_EQ(run_worker({"--frobnicate"}), 2);
    EXPECT_EQ(run_worker({"--listen", "127.0.0.1:0", "--connect",
                          "127.0.0.1:1"}),
              2);
}

} // namespace

#endif // QUORUM_WORKER_BIN
