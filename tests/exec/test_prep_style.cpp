// prep_style::ry_product — the O(n) state-prep lowering the angle
// encoding rides on. The density backend must lower a product state to
// an RY chain that reproduces the synthesis path's probabilities, must
// reject amplitude vectors that are NOT product states (a mislabelled
// program), and the style byte must survive the wire so remote workers
// recompile the identical op stream (protocol v2).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/registry.h"
#include "exec/serialise.h"
#include "qml/angle_encoding.h"
#include "qml/ansatz.h"
#include "qml/autoencoder.h"
#include "qml/swap_test.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum;

exec::program make_program(const qml::ansatz_params& params,
                           qsim::prep_style style) {
    qsim::compile_options options;
    options.prep = style;
    exec::program program;
    program.circuit = qsim::compiled_program::compile(
        qml::autoencoder_template(params, 1), options);
    program.readout.kind = exec::readout_kind::cbit_probability;
    program.readout.cbit = qml::swap_result_cbit;
    return program;
}

std::vector<std::vector<double>> angle_batch(std::size_t samples,
                                             std::uint64_t seed) {
    util::rng gen(seed);
    std::vector<std::vector<double>> batch(samples);
    for (auto& amps : batch) {
        std::vector<double> features(3);
        for (double& f : features) {
            f = gen.uniform();
        }
        amps = qml::to_angle_amplitudes(features, 3);
    }
    return batch;
}

std::vector<exec::sample>
as_samples(const std::vector<std::vector<double>>& batch) {
    std::vector<exec::sample> samples(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        samples[i].amplitudes = batch[i];
    }
    return samples;
}

TEST(PrepStyle, DensityRyProductMatchesSynthesisLowering) {
    util::rng gen(5);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const auto batch = angle_batch(6, 23);

    exec::engine_config config;
    config.noise = qsim::noise_model::ideal();
    const auto density = exec::make_executor("density", config);
    const auto statevector =
        exec::make_executor("statevector", exec::engine_config{});

    std::vector<double> via_chain(batch.size());
    std::vector<double> via_synthesis(batch.size());
    std::vector<double> via_statevector(batch.size());
    density->run_batch(make_program(params, qsim::prep_style::ry_product),
                       as_samples(batch), via_chain);
    density->run_batch(make_program(params, qsim::prep_style::synthesis),
                       as_samples(batch), via_synthesis);
    statevector->run_batch(make_program(params, qsim::prep_style::synthesis),
                           as_samples(batch), via_statevector);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_NEAR(via_chain[i], via_synthesis[i], 1e-9) << i;
        EXPECT_NEAR(via_chain[i], via_statevector[i], 1e-9) << i;
    }
}

TEST(PrepStyle, DensityRejectsNonProductAmplitudesUnderRyProduct) {
    util::rng gen(7);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    // An amplitude-encoded vector is (generically) NOT a product state:
    // feeding it through a ry_product program is a caller bug, and the
    // density backend must say so instead of silently mangling it.
    std::vector<double> features(7);
    for (double& f : features) {
        f = gen.uniform() / 7.0;
    }
    const std::vector<std::vector<double>> batch{
        qml::to_amplitudes(features, 3)};

    exec::engine_config config;
    config.noise = qsim::noise_model::ideal();
    const auto density = exec::make_executor("density", config);
    std::vector<double> out(1);
    try {
        density->run_batch(make_program(params, qsim::prep_style::ry_product),
                           as_samples(batch), out);
        FAIL() << "expected contract_error";
    } catch (const util::contract_error& e) {
        EXPECT_NE(std::string(e.what()).find("product-state"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PrepStyle, StyleByteSurvivesWireRoundTrip) {
    util::rng gen(11);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    for (const qsim::prep_style style :
         {qsim::prep_style::synthesis, qsim::prep_style::ry_product}) {
        const exec::program original = make_program(params, style);
        exec::wire::writer out;
        exec::wire::encode_program(out, original);
        exec::wire::reader in(out.data());
        const exec::program decoded = exec::wire::decode_program(in);
        in.expect_done();
        EXPECT_EQ(decoded.circuit.compiled_with().prep, style);
    }
}

TEST(PrepStyle, CorruptStyleByteIsRejected) {
    util::rng gen(13);
    const qml::ansatz_params params = qml::random_ansatz_params(3, 2, gen);
    const exec::program original =
        make_program(params, qsim::prep_style::ry_product);
    exec::wire::writer out;
    exec::wire::encode_program(out, original);
    std::vector<std::uint8_t> bytes = out.data();
    // The prep byte is the only 0x01 introduced by ry_product in the
    // options block; find it by flipping candidate bytes until decode
    // complains about the style specifically.
    bool rejected = false;
    for (std::size_t i = 0; i < bytes.size() && !rejected; ++i) {
        if (bytes[i] != 0x01) {
            continue;
        }
        std::vector<std::uint8_t> mutated = bytes;
        mutated[i] = 0xEE;
        try {
            exec::wire::reader in(mutated);
            (void)exec::wire::decode_program(in);
        } catch (const util::contract_error& e) {
            if (std::string(e.what()).find("prep style") !=
                std::string::npos) {
                rejected = true;
            }
        } catch (...) { // other corruption errors are fine, keep looking
        }
    }
    EXPECT_TRUE(rejected)
        << "no byte mutation produced the prep-style range error";
}

} // namespace
