#include <set>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "data/generators.h"
#include "data/split.h"
#include "util/rng.h"

namespace {

using namespace quorum::data;

dataset labelled_dataset(std::uint64_t seed) {
    quorum::util::rng gen(seed);
    generator_spec spec;
    spec.samples = 100;
    spec.anomalies = 10;
    spec.features = 5;
    return generate_clustered(spec, gen);
}

TEST(Split, StratifiedPreservesClassBalance) {
    const dataset d = labelled_dataset(3);
    quorum::util::rng gen(7);
    const split_result split = stratified_split(d, 0.6, gen);
    EXPECT_EQ(split.train.num_samples() + split.test.num_samples(), 100u);
    EXPECT_EQ(split.train.num_anomalies(), 6u);
    EXPECT_EQ(split.test.num_anomalies(), 4u);
    EXPECT_EQ(split.train.num_samples(), 60u);
}

TEST(Split, PartitionIsExactAndDisjoint) {
    const dataset d = labelled_dataset(5);
    quorum::util::rng gen(9);
    const split_result split = stratified_split(d, 0.5, gen);
    std::set<std::size_t> seen(split.train_indices.begin(),
                               split.train_indices.end());
    for (const std::size_t i : split.test_indices) {
        EXPECT_TRUE(seen.insert(i).second) << "row " << i << " duplicated";
    }
    EXPECT_EQ(seen.size(), 100u);
}

TEST(Split, RowsMatchOriginalData) {
    const dataset d = labelled_dataset(7);
    quorum::util::rng gen(11);
    const split_result split = stratified_split(d, 0.7, gen);
    for (std::size_t k = 0; k < split.train.num_samples(); ++k) {
        const std::size_t original = split.train_indices[k];
        for (std::size_t j = 0; j < d.num_features(); ++j) {
            ASSERT_DOUBLE_EQ(split.train.at(k, j), d.at(original, j));
        }
        ASSERT_EQ(split.train.label(k), d.label(original));
    }
}

TEST(Split, StratifiedKeepsBothClassesEvenWhenRounding) {
    // 3 anomalies, large train fraction: test part must still get one.
    quorum::util::rng data_gen(13);
    generator_spec spec;
    spec.samples = 40;
    spec.anomalies = 3;
    spec.features = 4;
    const dataset d = generate_clustered(spec, data_gen);
    quorum::util::rng gen(17);
    const split_result split = stratified_split(d, 0.9, gen);
    EXPECT_GE(split.train.num_anomalies(), 1u);
    EXPECT_GE(split.test.num_anomalies(), 1u);
}

TEST(Split, StratifiedRequiresLabels) {
    const dataset d = labelled_dataset(19).without_labels();
    quorum::util::rng gen(21);
    EXPECT_THROW((void)stratified_split(d, 0.5, gen),
                 quorum::util::contract_error);
}

TEST(Split, FractionValidated) {
    const dataset d = labelled_dataset(23);
    quorum::util::rng gen(25);
    EXPECT_THROW((void)stratified_split(d, 0.0, gen),
                 quorum::util::contract_error);
    EXPECT_THROW((void)stratified_split(d, 1.0, gen),
                 quorum::util::contract_error);
}

TEST(Split, RandomSplitWorksUnlabelled) {
    const dataset d = labelled_dataset(27).without_labels();
    quorum::util::rng gen(29);
    const split_result split = random_split(d, 0.25, gen);
    EXPECT_EQ(split.train.num_samples(), 25u);
    EXPECT_EQ(split.test.num_samples(), 75u);
    EXPECT_FALSE(split.train.has_labels());
}

TEST(Split, DeterministicForFixedSeed) {
    const dataset d = labelled_dataset(31);
    quorum::util::rng a(33);
    quorum::util::rng b(33);
    const split_result sa = stratified_split(d, 0.5, a);
    const split_result sb = stratified_split(d, 0.5, b);
    EXPECT_EQ(sa.train_indices, sb.train_indices);
    EXPECT_EQ(sa.test_indices, sb.test_indices);
}

TEST(Split, MetadataCarriedOver) {
    dataset d = labelled_dataset(35);
    d.set_name("meta");
    d.set_feature_names({"a", "b", "c", "d", "e"});
    quorum::util::rng gen(37);
    const split_result split = stratified_split(d, 0.5, gen);
    EXPECT_EQ(split.train.name(), "meta");
    EXPECT_EQ(split.test.feature_names().size(), 5u);
}

} // namespace
