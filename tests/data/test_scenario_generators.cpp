// The scenario-diversity data generators: the multivariate sensor
// stream (stuck/spike faults over a correlated bank) and the HEP dijet
// events (resonance-bump anomalies over a falling mass spectrum).
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace {

using namespace quorum::data;
using quorum::util::rng;

TEST(SensorStreamGenerator, ShapeLabelsAndRange) {
    rng gen(17);
    sensor_stream_spec spec;
    spec.base.samples = 300;
    spec.base.anomalies = 24;
    spec.base.features = 6;
    const dataset d = generate_sensor_stream(spec, gen);
    EXPECT_EQ(d.num_samples(), 300u);
    EXPECT_EQ(d.num_features(), 6u);
    ASSERT_TRUE(d.has_labels());
    // Per-row Bernoulli draws: the fault count concentrates around the
    // target, it is not exact.
    EXPECT_GT(d.num_anomalies(), 5u);
    EXPECT_LT(d.num_anomalies(), 60u);
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        for (std::size_t j = 0; j < d.num_features(); ++j) {
            EXPECT_GE(d.at(i, j), 0.0);
            EXPECT_LE(d.at(i, j), 1.0);
        }
    }
}

TEST(SensorStreamGenerator, LongerStreamEmitsShorterAsExactPrefix) {
    // The property the streaming determinism contract rests on: row t's
    // draws depend only on rows <= t, so at a FIXED fault rate
    // (anomalies/samples — the per-row Bernoulli parameter) requesting
    // more rows never changes the ones already emitted.
    sensor_stream_spec spec;
    spec.base.features = 5;
    spec.base.anomalies = 10;
    spec.base.samples = 200;
    rng gen_long(31);
    const dataset long_stream = generate_sensor_stream(spec, gen_long);
    spec.base.samples = 120;
    spec.base.anomalies = 6; // same 5% rate as 10/200
    rng gen_short(31);
    const dataset short_stream = generate_sensor_stream(spec, gen_short);
    for (std::size_t t = 0; t < short_stream.num_samples(); ++t) {
        EXPECT_EQ(long_stream.label(t), short_stream.label(t)) << t;
        for (std::size_t j = 0; j < spec.base.features; ++j) {
            EXPECT_EQ(long_stream.at(t, j), short_stream.at(t, j))
                << "t=" << t << " j=" << j;
        }
    }
}

TEST(SensorStreamGenerator, SensorsTrackTheSharedPlantState) {
    // Normal rows are a correlated bank: at least one sensor pair must
    // show strong |correlation| — faults would be undetectable against
    // an uncorrelated bank.
    rng gen(23);
    sensor_stream_spec spec;
    spec.base.samples = 400;
    spec.base.anomalies = 0;
    spec.base.features = 4;
    spec.coupling = 0.35;
    const dataset d = generate_sensor_stream(spec, gen);
    double best = 0.0;
    for (std::size_t a = 0; a < 4; ++a) {
        for (std::size_t b = a + 1; b < 4; ++b) {
            double ma = 0.0;
            double mb = 0.0;
            for (std::size_t t = 0; t < d.num_samples(); ++t) {
                ma += d.at(t, a);
                mb += d.at(t, b);
            }
            ma /= static_cast<double>(d.num_samples());
            mb /= static_cast<double>(d.num_samples());
            double cov = 0.0;
            double va = 0.0;
            double vb = 0.0;
            for (std::size_t t = 0; t < d.num_samples(); ++t) {
                const double da = d.at(t, a) - ma;
                const double db = d.at(t, b) - mb;
                cov += da * db;
                va += da * da;
                vb += db * db;
            }
            best = std::max(best, std::abs(cov) / std::sqrt(va * vb));
        }
    }
    EXPECT_GT(best, 0.5);
}

TEST(SensorStreamGenerator, RejectsNonsenseSpecs) {
    rng gen(1);
    sensor_stream_spec spec;
    spec.base.samples = 10;
    spec.base.anomalies = 10; // must be < samples
    EXPECT_THROW((void)generate_sensor_stream(spec, gen),
                 quorum::util::contract_error);
    spec.base.anomalies = 1;
    spec.stuck_probability = 1.5;
    EXPECT_THROW((void)generate_sensor_stream(spec, gen),
                 quorum::util::contract_error);
}

TEST(HepEventGenerator, ShapeLabelsNamesAndRange) {
    rng gen(41);
    const dataset d = make_hep_events(hep_spec{}, gen);
    EXPECT_EQ(d.num_samples(), 600u);
    EXPECT_EQ(d.num_features(), 6u);
    EXPECT_EQ(d.num_anomalies(), 30u);
    EXPECT_EQ(d.name(), "hep_dijet");
    ASSERT_EQ(d.feature_names().size(), 6u);
    EXPECT_EQ(d.feature_names()[0], "m_jj");
    EXPECT_EQ(d.feature_names()[5], "tau21");
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        for (std::size_t j = 0; j < d.num_features(); ++j) {
            EXPECT_GE(d.at(i, j), 0.0);
            EXPECT_LE(d.at(i, j), 1.0);
        }
    }
}

TEST(HepEventGenerator, SignalClustersInTheResonanceBump) {
    rng gen(43);
    hep_spec spec;
    const dataset d = make_hep_events(spec, gen);
    // Signal invariant mass concentrates at the resonance; background
    // falls from threshold — their means must be well separated and the
    // signal spread narrow.
    double signal_mean = 0.0;
    double background_mean = 0.0;
    std::size_t n_signal = 0;
    std::size_t n_background = 0;
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        if (d.label(i) == 1) {
            signal_mean += d.at(i, 0);
            ++n_signal;
        } else {
            background_mean += d.at(i, 0);
            ++n_background;
        }
    }
    signal_mean /= static_cast<double>(n_signal);
    background_mean /= static_cast<double>(n_background);
    EXPECT_NEAR(signal_mean, spec.resonance_mass, 0.02);
    EXPECT_LT(background_mean, 0.35);
    double signal_var = 0.0;
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        if (d.label(i) == 1) {
            const double delta = d.at(i, 0) - signal_mean;
            signal_var += delta * delta;
        }
    }
    EXPECT_LT(std::sqrt(signal_var / static_cast<double>(n_signal)), 0.06);
}

TEST(HepEventGenerator, StaysOutOfTheBenchmarkSuite) {
    // The Table-I suite is the paper's; new domains ride alongside it.
    const auto suite = make_benchmark_suite(7);
    ASSERT_EQ(suite.size(), 4u);
    for (const auto& entry : suite) {
        EXPECT_NE(entry.name, "hep_dijet");
    }
}

TEST(HepEventGenerator, RejectsNonsenseSpecs) {
    rng gen(1);
    hep_spec spec;
    spec.resonance_mass = 1.2;
    EXPECT_THROW((void)make_hep_events(spec, gen),
                 quorum::util::contract_error);
    spec.resonance_mass = 0.6;
    spec.anomalies = 600;
    EXPECT_THROW((void)make_hep_events(spec, gen),
                 quorum::util::contract_error);
}

} // namespace
