#include <gtest/gtest.h>

#include "util/contracts.h"

#include "data/dataset.h"

namespace {

using quorum::data::dataset;

TEST(Dataset, ShapeAndZeroInit) {
    dataset d(5, 3);
    EXPECT_EQ(d.num_samples(), 5u);
    EXPECT_EQ(d.num_features(), 3u);
    EXPECT_DOUBLE_EQ(d.at(4, 2), 0.0);
    EXPECT_FALSE(d.has_labels());
}

TEST(Dataset, RejectsEmptyShape) {
    EXPECT_THROW(dataset(0, 3), quorum::util::contract_error);
    EXPECT_THROW(dataset(3, 0), quorum::util::contract_error);
}

TEST(Dataset, FromRowsCopiesValues) {
    const dataset d = dataset::from_rows({{1.0, 2.0}, {3.0, 4.0}}, {0, 1});
    EXPECT_EQ(d.num_samples(), 2u);
    EXPECT_EQ(d.num_features(), 2u);
    EXPECT_DOUBLE_EQ(d.at(1, 0), 3.0);
    EXPECT_EQ(d.label(0), 0);
    EXPECT_EQ(d.label(1), 1);
}

TEST(Dataset, FromRowsRejectsRagged) {
    EXPECT_THROW((dataset::from_rows({{1.0, 2.0}, {3.0}})),
                 quorum::util::contract_error);
    EXPECT_THROW((dataset::from_rows({})), quorum::util::contract_error);
}

TEST(Dataset, RowSpanViewsData) {
    dataset d(2, 3);
    d.at(1, 0) = 7.0;
    d.at(1, 2) = 9.0;
    const auto row = d.row(1);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_DOUBLE_EQ(row[0], 7.0);
    EXPECT_DOUBLE_EQ(row[2], 9.0);
}

TEST(Dataset, LabelValidation) {
    dataset d(3, 1);
    EXPECT_THROW((d.set_labels({0, 1})), quorum::util::contract_error);
    EXPECT_THROW((d.set_labels({0, 1, 2})), quorum::util::contract_error);
    d.set_labels({0, 1, 0});
    EXPECT_TRUE(d.has_labels());
    EXPECT_EQ(d.num_anomalies(), 1u);
}

TEST(Dataset, SetSingleLabelInitialisesVector) {
    dataset d(3, 1);
    d.set_label(2, 1);
    EXPECT_TRUE(d.has_labels());
    EXPECT_EQ(d.label(0), 0);
    EXPECT_EQ(d.label(2), 1);
    EXPECT_THROW(d.set_label(0, 5), quorum::util::contract_error);
}

TEST(Dataset, LabelAccessOnUnlabelledThrows) {
    dataset d(2, 2);
    EXPECT_THROW((void)d.label(0), quorum::util::contract_error);
}

TEST(Dataset, WithoutLabelsStripsOnlyLabels) {
    dataset d = dataset::from_rows({{1.0}, {2.0}}, {1, 0});
    d.set_name("named");
    const dataset stripped = d.without_labels();
    EXPECT_FALSE(stripped.has_labels());
    EXPECT_EQ(stripped.num_anomalies(), 0u);
    EXPECT_DOUBLE_EQ(stripped.at(0, 0), 1.0);
    EXPECT_EQ(stripped.name(), "named");
    EXPECT_TRUE(d.has_labels()); // original untouched
}

TEST(Dataset, FeatureNamesValidated) {
    dataset d(2, 2);
    EXPECT_THROW((d.set_feature_names({"a"})), quorum::util::contract_error);
    d.set_feature_names({"a", "b"});
    EXPECT_EQ(d.feature_names()[1], "b");
}

TEST(Dataset, OutOfRangeAccessThrows) {
    dataset d(2, 2);
    EXPECT_THROW(d.at(2, 0), quorum::util::contract_error);
    EXPECT_THROW(d.at(0, 2), quorum::util::contract_error);
    EXPECT_THROW((void)d.row(2), quorum::util::contract_error);
}

} // namespace
