#include <sstream>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "data/csv.h"
#include "data/preprocess.h"

namespace {

using namespace quorum::data;

TEST(Csv, ReadsNumericDataWithHeader) {
    std::istringstream in("a,b,c\n1.5,2.5,3.5\n4,5,6\n");
    csv_options options;
    const dataset d = read_csv(in, options);
    EXPECT_EQ(d.num_samples(), 2u);
    EXPECT_EQ(d.num_features(), 3u);
    EXPECT_DOUBLE_EQ(d.at(0, 1), 2.5);
    EXPECT_DOUBLE_EQ(d.at(1, 2), 6.0);
    ASSERT_EQ(d.feature_names().size(), 3u);
    EXPECT_EQ(d.feature_names()[0], "a");
    EXPECT_FALSE(d.has_labels());
}

TEST(Csv, ReadsHeaderlessData) {
    std::istringstream in("1,2\n3,4\n");
    csv_options options;
    options.has_header = false;
    const dataset d = read_csv(in, options);
    EXPECT_EQ(d.num_samples(), 2u);
    EXPECT_DOUBLE_EQ(d.at(0, 0), 1.0);
}

TEST(Csv, ExtractsLabelColumn) {
    std::istringstream in("f0,f1,label\n0.1,0.2,0\n0.3,0.4,1\n");
    csv_options options;
    options.label_column = 2;
    const dataset d = read_csv(in, options);
    EXPECT_EQ(d.num_features(), 2u);
    ASSERT_TRUE(d.has_labels());
    EXPECT_EQ(d.label(0), 0);
    EXPECT_EQ(d.label(1), 1);
    EXPECT_EQ(d.feature_names().size(), 2u);
}

TEST(Csv, HashesNonNumericCells) {
    std::istringstream in("cat,value\nvisa,1.0\nmastercard,2.0\n");
    csv_options options;
    const dataset d = read_csv(in, options);
    EXPECT_DOUBLE_EQ(d.at(0, 0), hash_category("visa"));
    EXPECT_DOUBLE_EQ(d.at(1, 0), hash_category("mastercard"));
    EXPECT_DOUBLE_EQ(d.at(1, 1), 2.0);
}

TEST(Csv, EmptyCellsBecomeZero) {
    std::istringstream in("a,b\n,2\n3,\n");
    csv_options options;
    const dataset d = read_csv(in, options);
    EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(d.at(1, 1), 0.0);
}

TEST(Csv, RaggedRowsRejected) {
    std::istringstream in("a,b\n1,2\n3\n");
    csv_options options;
    EXPECT_THROW(read_csv(in, options), quorum::util::contract_error);
}

TEST(Csv, EmptyFileRejected) {
    std::istringstream in("header1,header2\n");
    csv_options options;
    EXPECT_THROW(read_csv(in, options), quorum::util::contract_error);
}

TEST(Csv, MissingFileThrowsRuntimeError) {
    csv_options options;
    EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv", options),
                 std::runtime_error);
}

TEST(Csv, RoundTripPreservesValuesAndLabels) {
    dataset original = dataset::from_rows(
        {{0.125, 0.25}, {0.5, 0.75}, {1.0, 0.0}}, {0, 1, 0});
    original.set_feature_names({"alpha", "beta"});
    std::ostringstream out;
    write_csv(out, original);

    std::istringstream in(out.str());
    csv_options options;
    options.label_column = 2;
    const dataset restored = read_csv(in, options);
    EXPECT_EQ(restored.num_samples(), 3u);
    EXPECT_EQ(restored.num_features(), 2u);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            EXPECT_DOUBLE_EQ(restored.at(i, j), original.at(i, j));
        }
        EXPECT_EQ(restored.label(i), original.label(i));
    }
    EXPECT_EQ(restored.feature_names()[0], "alpha");
}

TEST(Csv, WriteScoresIncludesLabels) {
    const dataset d = dataset::from_rows({{1.0}, {2.0}}, {0, 1});
    std::ostringstream out;
    write_scores_csv(out, d, {0.5, 2.5});
    const std::string text = out.str();
    EXPECT_NE(text.find("sample,score,label"), std::string::npos);
    EXPECT_NE(text.find("0,0.5,0"), std::string::npos);
    EXPECT_NE(text.find("1,2.5,1"), std::string::npos);
}

TEST(Csv, WriteScoresValidatesLength) {
    const dataset d = dataset::from_rows({{1.0}, {2.0}});
    std::ostringstream out;
    EXPECT_THROW((write_scores_csv(out, d, {0.5})),
                 quorum::util::contract_error);
}

TEST(Csv, CustomDelimiter) {
    std::istringstream in("a;b\n1;2\n");
    csv_options options;
    options.delimiter = ';';
    const dataset d = read_csv(in, options);
    EXPECT_DOUBLE_EQ(d.at(0, 1), 2.0);
}

} // namespace
