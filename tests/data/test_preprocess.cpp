#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "data/preprocess.h"
#include "util/rng.h"

namespace {

using namespace quorum::data;

TEST(Preprocess, NormalizeForQuorumBoundsFeatures) {
    quorum::util::rng gen(3);
    dataset d(50, 4);
    for (std::size_t i = 0; i < 50; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            d.at(i, j) = gen.uniform(-100.0, 100.0);
        }
    }
    const dataset normalized = normalize_for_quorum(d);
    const double cap = 1.0 / 4.0;
    for (std::size_t i = 0; i < 50; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_GE(normalized.at(i, j), -1e-12);
            EXPECT_LE(normalized.at(i, j), cap + 1e-12);
        }
    }
}

TEST(Preprocess, SumOfSquaresNeverExceedsOne) {
    // The paper's key invariant (§IV-A): after 1/M normalisation, every
    // sample's squared feature mass fits into a quantum state.
    quorum::util::rng gen(5);
    dataset d(100, 17);
    for (std::size_t i = 0; i < 100; ++i) {
        for (std::size_t j = 0; j < 17; ++j) {
            d.at(i, j) = gen.normal(0.0, 50.0);
        }
    }
    const dataset normalized = normalize_for_quorum(d);
    for (std::size_t i = 0; i < 100; ++i) {
        double sum_squares = 0.0;
        for (std::size_t j = 0; j < 17; ++j) {
            sum_squares += normalized.at(i, j) * normalized.at(i, j);
        }
        EXPECT_LE(sum_squares, 1.0 + 1e-12);
    }
}

TEST(Preprocess, ExtremesMapToZeroAndCap) {
    dataset d = dataset::from_rows({{10.0, -5.0}, {20.0, 5.0}});
    const dataset normalized = normalize_for_quorum(d);
    EXPECT_DOUBLE_EQ(normalized.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(normalized.at(1, 0), 0.5); // 1/M with M=2
    EXPECT_DOUBLE_EQ(normalized.at(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(normalized.at(1, 1), 0.5);
}

TEST(Preprocess, ConstantFeatureMapsToZero) {
    dataset d = dataset::from_rows({{3.0, 1.0}, {3.0, 2.0}});
    const dataset normalized = normalize_for_quorum(d);
    EXPECT_DOUBLE_EQ(normalized.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(normalized.at(1, 0), 0.0);
}

TEST(Preprocess, MaxScaleMatchesPaperFormula) {
    dataset d = dataset::from_rows({{2.0, 8.0}, {4.0, 2.0}});
    const dataset scaled = normalize_max_scale(d);
    // value / max * (1/M), M = 2.
    EXPECT_DOUBLE_EQ(scaled.at(0, 0), 2.0 / 4.0 * 0.5);
    EXPECT_DOUBLE_EQ(scaled.at(0, 1), 8.0 / 8.0 * 0.5);
    EXPECT_DOUBLE_EQ(scaled.at(1, 1), 2.0 / 8.0 * 0.5);
}

TEST(Preprocess, MaxScaleRejectsNegativeValues) {
    dataset d = dataset::from_rows({{-1.0}, {2.0}});
    EXPECT_THROW(normalize_max_scale(d), quorum::util::contract_error);
}

TEST(Preprocess, MaxScaleAllZerosFeature) {
    dataset d = dataset::from_rows({{0.0}, {0.0}});
    const dataset scaled = normalize_max_scale(d);
    EXPECT_DOUBLE_EQ(scaled.at(0, 0), 0.0);
}

TEST(Preprocess, LabelsSurviveNormalisationUntouched) {
    dataset d = dataset::from_rows({{1.0}, {2.0}}, {1, 0});
    const dataset normalized = normalize_for_quorum(d);
    EXPECT_EQ(normalized.label(0), 1);
    EXPECT_EQ(normalized.label(1), 0);
}

TEST(Preprocess, NanRejected) {
    dataset d(2, 1);
    d.at(0, 0) = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(normalize_for_quorum(d), quorum::util::contract_error);
    d.at(0, 0) = std::numeric_limits<double>::infinity();
    EXPECT_THROW(summarize_ranges(d), quorum::util::contract_error);
}

TEST(Preprocess, SummarizeRangesCorrect) {
    dataset d = dataset::from_rows({{1.0, -2.0}, {5.0, 0.0}, {3.0, -7.0}});
    const normalization_summary summary = summarize_ranges(d);
    EXPECT_DOUBLE_EQ(summary.feature_min[0], 1.0);
    EXPECT_DOUBLE_EQ(summary.feature_max[0], 5.0);
    EXPECT_DOUBLE_EQ(summary.feature_min[1], -7.0);
    EXPECT_DOUBLE_EQ(summary.feature_max[1], 0.0);
}

TEST(Preprocess, HashCategoryDeterministicAndInRange) {
    const double a1 = hash_category("visa");
    const double a2 = hash_category("visa");
    const double b = hash_category("mastercard");
    EXPECT_DOUBLE_EQ(a1, a2);
    EXPECT_NE(a1, b);
    EXPECT_GE(a1, 0.0);
    EXPECT_LT(a1, 1.0);
    EXPECT_GE(hash_category(""), 0.0);
}

TEST(Preprocess, HashSpreadsValues) {
    // 1000 distinct tokens should not collide (sanity, not crypto).
    std::set<double> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(hash_category("token_" + std::to_string(i)));
    }
    EXPECT_EQ(seen.size(), 1000u);
}

} // namespace
