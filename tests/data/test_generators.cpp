#include <cmath>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "data/generators.h"
#include "util/stats.h"

namespace {

using namespace quorum::data;

/// Mean distance of rows from the dataset's global centroid, split by label.
struct separation {
    double normal_distance = 0.0;
    double anomaly_distance = 0.0;
};

separation measure_separation(const dataset& d) {
    std::vector<double> centroid(d.num_features(), 0.0);
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        for (std::size_t j = 0; j < d.num_features(); ++j) {
            centroid[j] += d.at(i, j);
        }
    }
    for (double& c : centroid) {
        c /= static_cast<double>(d.num_samples());
    }
    separation out;
    std::size_t normals = 0;
    std::size_t anomalies = 0;
    for (std::size_t i = 0; i < d.num_samples(); ++i) {
        double dist = 0.0;
        for (std::size_t j = 0; j < d.num_features(); ++j) {
            const double delta = d.at(i, j) - centroid[j];
            dist += delta * delta;
        }
        dist = std::sqrt(dist);
        if (d.label(i) == 1) {
            out.anomaly_distance += dist;
            ++anomalies;
        } else {
            out.normal_distance += dist;
            ++normals;
        }
    }
    out.normal_distance /= static_cast<double>(normals);
    out.anomaly_distance /= static_cast<double>(anomalies);
    return out;
}

TEST(Generators, TableOneShapes) {
    quorum::util::rng gen(1);
    const dataset breast = make_breast_cancer(gen);
    EXPECT_EQ(breast.num_samples(), 367u);
    EXPECT_EQ(breast.num_anomalies(), 10u);
    EXPECT_EQ(breast.num_features(), 30u);

    quorum::util::rng gen2(2);
    const dataset pen = make_pen_global(gen2);
    EXPECT_EQ(pen.num_samples(), 809u);
    EXPECT_EQ(pen.num_anomalies(), 90u);
    EXPECT_EQ(pen.num_features(), 16u);

    quorum::util::rng gen3(3);
    const dataset letter = make_letter(gen3);
    EXPECT_EQ(letter.num_samples(), 533u);
    EXPECT_EQ(letter.num_anomalies(), 33u);
    EXPECT_EQ(letter.num_features(), 32u);

    quorum::util::rng gen4(4);
    const dataset plant = make_power_plant(gen4);
    EXPECT_EQ(plant.num_samples(), 1000u);
    EXPECT_EQ(plant.num_anomalies(), 30u);
    EXPECT_EQ(plant.num_features(), 5u);
}

TEST(Generators, ValuesInUnitRange) {
    quorum::util::rng gen(7);
    for (const auto& d :
         {make_breast_cancer(gen), make_pen_global(gen), make_letter(gen),
          make_power_plant(gen)}) {
        for (std::size_t i = 0; i < d.num_samples(); ++i) {
            for (std::size_t j = 0; j < d.num_features(); ++j) {
                ASSERT_GE(d.at(i, j), 0.0);
                ASSERT_LE(d.at(i, j), 1.0);
            }
        }
    }
}

TEST(Generators, AnomaliesSitFartherFromCentroid) {
    quorum::util::rng gen(11);
    const dataset breast = make_breast_cancer(gen);
    const separation s = measure_separation(breast);
    EXPECT_GT(s.anomaly_distance, s.normal_distance * 1.1);
}

TEST(Generators, PowerPlantAnomaliesBreakCorrelations) {
    quorum::util::rng gen(13);
    const dataset plant = make_power_plant(gen);
    // Normal rows: temperature (f0) and power (f4) strongly anti-correlated.
    quorum::util::welford_accumulator temp_acc;
    quorum::util::welford_accumulator power_acc;
    for (std::size_t i = 0; i < plant.num_samples(); ++i) {
        if (plant.label(i) == 0) {
            temp_acc.add(plant.at(i, 0));
            power_acc.add(plant.at(i, 4));
        }
    }
    double covariance = 0.0;
    std::size_t normals = 0;
    for (std::size_t i = 0; i < plant.num_samples(); ++i) {
        if (plant.label(i) == 0) {
            covariance += (plant.at(i, 0) - temp_acc.mean()) *
                          (plant.at(i, 4) - power_acc.mean());
            ++normals;
        }
    }
    covariance /= static_cast<double>(normals);
    const double correlation = covariance / (temp_acc.stddev_population() *
                                             power_acc.stddev_population());
    EXPECT_LT(correlation, -0.9); // tight anti-correlated manifold
}

TEST(Generators, ClusteredSpecValidation) {
    quorum::util::rng gen(17);
    generator_spec spec;
    spec.samples = 10;
    spec.anomalies = 10; // not strictly fewer than samples
    EXPECT_THROW(generate_clustered(spec, gen), quorum::util::contract_error);
    spec.anomalies = 2;
    spec.anomaly_feature_fraction = 0.0;
    EXPECT_THROW(generate_clustered(spec, gen), quorum::util::contract_error);
}

TEST(Generators, DeterministicForSameSeed) {
    quorum::util::rng a(21);
    quorum::util::rng b(21);
    const dataset da = make_letter(a);
    const dataset db = make_letter(b);
    for (std::size_t i = 0; i < da.num_samples(); ++i) {
        for (std::size_t j = 0; j < da.num_features(); ++j) {
            ASSERT_DOUBLE_EQ(da.at(i, j), db.at(i, j));
        }
    }
    EXPECT_EQ(da.labels(), db.labels());
}

TEST(Generators, BenchmarkSuiteMatchesTableOne) {
    const auto suite = make_benchmark_suite(2025);
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_EQ(suite[0].name, "breast_cancer");
    EXPECT_DOUBLE_EQ(suite[0].bucket_probability, 0.75);
    EXPECT_EQ(suite[1].name, "pen_global");
    EXPECT_DOUBLE_EQ(suite[1].bucket_probability, 0.60);
    EXPECT_EQ(suite[2].name, "letter");
    EXPECT_DOUBLE_EQ(suite[2].bucket_probability, 0.95);
    EXPECT_EQ(suite[3].name, "power_plant");
    EXPECT_DOUBLE_EQ(suite[3].bucket_probability, 0.75);
}

TEST(Generators, BenchmarkSuiteDeterministic) {
    const auto a = make_benchmark_suite(99);
    const auto b = make_benchmark_suite(99);
    for (std::size_t k = 0; k < a.size(); ++k) {
        ASSERT_EQ(a[k].data.num_samples(), b[k].data.num_samples());
        for (std::size_t i = 0; i < a[k].data.num_samples(); i += 37) {
            ASSERT_DOUBLE_EQ(a[k].data.at(i, 0), b[k].data.at(i, 0));
        }
    }
}

TEST(Generators, LabelPlacementIsScattered) {
    quorum::util::rng gen(23);
    const dataset pen = make_pen_global(gen);
    // Anomalies must not be bunched at the start/end (they are sampled
    // uniformly over row indices).
    std::size_t first_half = 0;
    for (std::size_t i = 0; i < pen.num_samples() / 2; ++i) {
        first_half += static_cast<std::size_t>(pen.label(i) == 1);
    }
    EXPECT_GT(first_half, 20u);
    EXPECT_LT(first_half, 70u);
}

} // namespace
