#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "data/feature_select.h"
#include "util/rng.h"

namespace {

using namespace quorum::data;

TEST(FeatureSelect, ReturnsDistinctInRangeIndices) {
    quorum::util::rng gen(3);
    for (int trial = 0; trial < 50; ++trial) {
        const auto selected = select_features(30, 7, gen);
        ASSERT_EQ(selected.size(), 7u);
        std::set<std::size_t> seen(selected.begin(), selected.end());
        EXPECT_EQ(seen.size(), 7u);
        for (const std::size_t j : selected) {
            EXPECT_LT(j, 30u);
        }
    }
}

TEST(FeatureSelect, AllFeaturesWhenCountExceedsTotal) {
    quorum::util::rng gen(5);
    // Power-plant case: 5 features, m = 7 slots.
    const auto selected = select_features(5, 7, gen);
    EXPECT_EQ(selected, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
    const auto exact = select_features(4, 4, gen);
    EXPECT_EQ(exact, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(FeatureSelect, CoverageIsUniformish) {
    quorum::util::rng gen(7);
    std::vector<int> hits(20, 0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        for (const std::size_t j : select_features(20, 5, gen)) {
            ++hits[j];
        }
    }
    // Each feature expected trials * 5/20 = 5000 times, +-10%.
    for (const int count : hits) {
        EXPECT_NEAR(count, 5000, 500);
    }
}

TEST(FeatureSelect, GatherPullsCorrectValues) {
    const std::vector<double> row{10.0, 11.0, 12.0, 13.0};
    const std::vector<std::size_t> indices{3, 0, 2};
    const std::vector<double> gathered = gather_features(row, indices);
    EXPECT_EQ(gathered, (std::vector<double>{13.0, 10.0, 12.0}));
}

TEST(FeatureSelect, GatherRejectsOutOfRange) {
    const std::vector<double> row{1.0, 2.0};
    const std::vector<std::size_t> indices{0, 2};
    EXPECT_THROW(gather_features(row, indices), quorum::util::contract_error);
}

TEST(FeatureSelect, ZeroTotalRejected) {
    quorum::util::rng gen(9);
    EXPECT_THROW(select_features(0, 3, gen), quorum::util::contract_error);
}

} // namespace
