#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/contracts.h"

#include "data/bucketing.h"
#include "util/rng.h"

namespace {

using namespace quorum::data;

TEST(Bucketing, ProbabilityEdgeCases) {
    EXPECT_DOUBLE_EQ(prob_bucket_contains_anomaly(100, 0, 10), 0.0);
    // Bucket bigger than the normal population: pigeonhole guarantees 1.
    EXPECT_DOUBLE_EQ(prob_bucket_contains_anomaly(100, 5, 96), 1.0);
    // Whole dataset in one bucket with at least one anomaly.
    EXPECT_DOUBLE_EQ(prob_bucket_contains_anomaly(100, 1, 100), 1.0);
}

TEST(Bucketing, ProbabilityClosedFormSmallCase) {
    // N=4, A=1, s=2: P = 1 - C(3,2)/C(4,2) = 1 - 3/6 = 0.5.
    EXPECT_NEAR(prob_bucket_contains_anomaly(4, 1, 2), 0.5, 1e-12);
    // N=5, A=2, s=2: P = 1 - C(3,2)/C(5,2) = 1 - 3/10 = 0.7.
    EXPECT_NEAR(prob_bucket_contains_anomaly(5, 2, 2), 0.7, 1e-12);
}

TEST(Bucketing, ProbabilityMatchesMonteCarlo) {
    quorum::util::rng gen(3);
    const std::size_t population = 60;
    const std::size_t anomalies = 7;
    const std::size_t bucket_size = 9;
    const double analytic =
        prob_bucket_contains_anomaly(population, anomalies, bucket_size);
    std::size_t hits = 0;
    const std::size_t trials = 20000;
    for (std::size_t t = 0; t < trials; ++t) {
        const auto sample =
            gen.sample_without_replacement(population, bucket_size);
        bool contains = false;
        for (const std::size_t s : sample) {
            if (s < anomalies) { // treat the first A indices as anomalies
                contains = true;
                break;
            }
        }
        hits += contains ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(trials),
                analytic, 0.01);
}

TEST(Bucketing, ProbabilityMonotoneInBucketSize) {
    double previous = 0.0;
    for (std::size_t s = 1; s <= 50; ++s) {
        const double p = prob_bucket_contains_anomaly(200, 6, s);
        EXPECT_GE(p, previous - 1e-12);
        previous = p;
    }
}

TEST(Bucketing, SolverFindsMinimalSize) {
    const std::size_t size = solve_bucket_size(200, 6, 0.75);
    EXPECT_GE(prob_bucket_contains_anomaly(200, 6, size), 0.75);
    if (size > 1) {
        EXPECT_LT(prob_bucket_contains_anomaly(200, 6, size - 1), 0.75);
    }
}

TEST(Bucketing, SolverZeroAnomaliesFallsBackToPopulation) {
    EXPECT_EQ(solve_bucket_size(100, 0, 0.75), 100u);
}

TEST(Bucketing, SolverRejectsBadTargets) {
    EXPECT_THROW((void)solve_bucket_size(100, 5, 0.0),
                 quorum::util::contract_error);
    EXPECT_THROW((void)solve_bucket_size(100, 5, 1.0),
                 quorum::util::contract_error);
}

TEST(Bucketing, SolverTableOneConfigurations) {
    // Paper Table I: check the solver produces sane sizes for each dataset's
    // (N, A, p) triple; higher p must never shrink the bucket.
    struct table_row {
        std::size_t n;
        std::size_t a;
        double p;
    };
    const table_row rows[] = {
        {367, 10, 0.75}, {809, 90, 0.60}, {533, 33, 0.95}, {1000, 30, 0.75}};
    for (const auto& row : rows) {
        const std::size_t size = solve_bucket_size(row.n, row.a, row.p);
        EXPECT_GE(size, 2u);
        EXPECT_LT(size, row.n);
        EXPECT_GE(prob_bucket_contains_anomaly(row.n, row.a, size), row.p);
    }
    EXPECT_LE(solve_bucket_size(533, 33, 0.60),
              solve_bucket_size(533, 33, 0.95));
}

TEST(Bucketing, MakeBucketsPartitionsEverything) {
    quorum::util::rng gen(5);
    const auto buckets = make_buckets(103, 10, gen);
    std::set<std::size_t> seen;
    for (const auto& bucket : buckets) {
        for (const std::size_t index : bucket) {
            EXPECT_TRUE(seen.insert(index).second) << "duplicate " << index;
            EXPECT_LT(index, 103u);
        }
    }
    EXPECT_EQ(seen.size(), 103u);
}

TEST(Bucketing, BucketSizesDifferByAtMostOne) {
    quorum::util::rng gen(7);
    const auto buckets = make_buckets(103, 10, gen);
    std::size_t smallest = 1000;
    std::size_t largest = 0;
    for (const auto& bucket : buckets) {
        smallest = std::min(smallest, bucket.size());
        largest = std::max(largest, bucket.size());
    }
    EXPECT_LE(largest - smallest, 1u);
}

TEST(Bucketing, BucketCountMatchesCeilDivision) {
    quorum::util::rng gen(9);
    EXPECT_EQ(make_buckets(100, 10, gen).size(), 10u);
    EXPECT_EQ(make_buckets(101, 10, gen).size(), 11u);
    EXPECT_EQ(make_buckets(9, 10, gen).size(), 1u);
    EXPECT_EQ(make_buckets(1, 1, gen).size(), 1u);
}

TEST(Bucketing, ShufflesAcrossCalls) {
    quorum::util::rng gen(11);
    const auto first = make_buckets(50, 10, gen);
    const auto second = make_buckets(50, 10, gen);
    // Same sizes but (overwhelmingly likely) different contents.
    EXPECT_EQ(first.size(), second.size());
    bool any_different = false;
    for (std::size_t b = 0; b < first.size() && !any_different; ++b) {
        any_different = first[b] != second[b];
    }
    EXPECT_TRUE(any_different);
}

class BucketProbabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(BucketProbabilitySweep, SolverSatisfiesEveryTarget) {
    const double target = GetParam();
    const std::size_t size = solve_bucket_size(533, 33, target);
    EXPECT_GE(prob_bucket_contains_anomaly(533, 33, size), target);
}

INSTANTIATE_TEST_SUITE_P(PaperTargets, BucketProbabilitySweep,
                         ::testing::Values(0.5, 0.6, 0.75, 0.95, 0.98));

} // namespace
